//! Codeword geometries: where each Reed–Solomon codeword lives in the
//! matrix.
//!
//! The baseline architecture (paper Fig. 1) makes every **row** a
//! codeword, so the unreliable middle rows concentrate all mid-strand
//! errors in a few codewords. **Gini** (paper Fig. 8) stripes codewords
//! *diagonally*, wrapping to the next column at the bottom edge, so every
//! codeword samples every row nearly equally — and still touches each
//! column at most once, preserving the baseline's erasure resilience
//! (a lost molecule costs every codeword exactly one symbol).

use std::fmt;

/// Assigns matrix cells to codewords.
///
/// Contract (enforced by tests): the `codeword_count()` position lists
/// form a partition of all `rows × (data_cols + parity_cols)` cells; each
/// list has exactly `data_cols` data positions followed by `parity_cols`
/// parity positions; and no codeword touches a column twice.
pub trait CodewordGeometry: fmt::Debug {
    /// Number of codewords (always `rows` in this architecture).
    fn codeword_count(&self) -> usize;

    /// The cells of codeword `k`: `data_cols` data cells followed by
    /// `parity_cols` parity cells, as `(row, col)` pairs.
    fn codeword_positions(&self, k: usize) -> Vec<(usize, usize)>;
}

/// The baseline geometry: codeword `k` = row `k` (paper Fig. 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowGeometry {
    rows: usize,
    data_cols: usize,
    parity_cols: usize,
}

impl RowGeometry {
    /// Creates the row geometry for an `rows × (data_cols + parity_cols)`
    /// unit.
    pub fn new(rows: usize, data_cols: usize, parity_cols: usize) -> RowGeometry {
        RowGeometry {
            rows,
            data_cols,
            parity_cols,
        }
    }
}

impl CodewordGeometry for RowGeometry {
    fn codeword_count(&self) -> usize {
        self.rows
    }

    fn codeword_positions(&self, k: usize) -> Vec<(usize, usize)> {
        assert!(k < self.rows, "codeword index out of range");
        (0..self.data_cols + self.parity_cols)
            .map(|c| (k, c))
            .collect()
    }
}

/// Gini's diagonal geometry (paper Fig. 8), with optional reliability
/// classes: rows listed in `excluded_rows` stay row-codewords (Fig. 8b),
/// while the remaining rows are covered by one continuous diagonal walk.
///
/// The walk visits data cells `(t mod S', (t + cycle) mod M)` — stepping
/// one row down and one column right per symbol, continuing "from the next
/// column" on wraparound (paper §4.2). When `gcd(S', M) = d > 1` the walk
/// closes after `lcm(S', M)` steps, so each of the `d` cycles offsets the
/// column by one; the cycles partition cells by `(col − row) mod d`,
/// making the walk a bijection onto the included data region. Parity for
/// diagonal codeword `k` sits at `(row (k + e) mod S', parity column e)`,
/// so parity columns also meet each codeword exactly once.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiagonalGeometry {
    rows: usize,
    data_cols: usize,
    parity_cols: usize,
    /// Sorted list of interleaved (included) rows.
    included: Vec<usize>,
    /// Sorted list of excluded rows (kept as row-codewords).
    excluded: Vec<usize>,
}

impl DiagonalGeometry {
    /// Creates the Gini geometry; `excluded_rows` may be empty (full
    /// interleaving) or list rows to keep as dedicated row-codewords.
    ///
    /// # Panics
    ///
    /// Panics when an excluded row is out of range, duplicated, or no
    /// rows remain to interleave.
    pub fn new(
        rows: usize,
        data_cols: usize,
        parity_cols: usize,
        excluded_rows: &[usize],
    ) -> DiagonalGeometry {
        let mut excluded = excluded_rows.to_vec();
        excluded.sort_unstable();
        excluded.windows(2).for_each(|w| {
            assert_ne!(w[0], w[1], "duplicate excluded row {}", w[0]);
        });
        if let Some(&max) = excluded.last() {
            assert!(max < rows, "excluded row {max} out of range");
        }
        let included: Vec<usize> = (0..rows).filter(|r| !excluded.contains(r)).collect();
        assert!(
            !included.is_empty(),
            "at least one row must remain interleaved"
        );
        DiagonalGeometry {
            rows,
            data_cols,
            parity_cols,
            included,
            excluded,
        }
    }

    /// The rows covered by the diagonal walk.
    pub fn included_rows(&self) -> &[usize] {
        &self.included
    }

    fn gcd(a: usize, b: usize) -> usize {
        if b == 0 {
            a
        } else {
            Self::gcd(b, a % b)
        }
    }
}

impl CodewordGeometry for DiagonalGeometry {
    fn codeword_count(&self) -> usize {
        self.rows
    }

    fn codeword_positions(&self, k: usize) -> Vec<(usize, usize)> {
        assert!(k < self.rows, "codeword index out of range");
        let m = self.data_cols;
        // Excluded rows are ordinary row-codewords.
        if let Ok(x) = self.excluded.binary_search(&k) {
            let row = self.excluded[x];
            return (0..m + self.parity_cols).map(|c| (row, c)).collect();
        }
        // Diagonal codeword: its rank among included rows.
        let rank = self
            .included
            .iter()
            .position(|&r| r == k)
            .expect("non-excluded codeword indexes an included row");
        let s = self.included.len();
        let l = s / Self::gcd(s, m) * m; // lcm(S', M)
        let mut out = Vec::with_capacity(m + self.parity_cols);
        let start = rank * m;
        for t in start..start + m {
            let cycle = t / l;
            out.push((self.included[t % s], (t + cycle) % m));
        }
        for e in 0..self.parity_cols {
            out.push((self.included[(rank + e) % s], m + e));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn check_contract(geom: &dyn CodewordGeometry, rows: usize, cols: usize, data_cols: usize) {
        let mut seen = HashSet::new();
        for k in 0..geom.codeword_count() {
            let pos = geom.codeword_positions(k);
            assert_eq!(pos.len(), cols, "codeword {k} length");
            // No column touched twice by the same codeword.
            let col_set: HashSet<usize> = pos.iter().map(|&(_, c)| c).collect();
            assert_eq!(col_set.len(), cols, "codeword {k} repeats a column");
            // Data positions lie in the data region, parity in parity region.
            for (i, &(r, c)) in pos.iter().enumerate() {
                assert!(r < rows && c < cols);
                if i < data_cols {
                    assert!(c < data_cols, "codeword {k} data cell in parity region");
                } else {
                    assert!(c >= data_cols, "codeword {k} parity cell in data region");
                }
                assert!(seen.insert((r, c)), "cell ({r},{c}) claimed twice");
            }
        }
        assert_eq!(seen.len(), rows * cols, "cells not fully covered");
    }

    #[test]
    fn row_geometry_satisfies_contract() {
        check_contract(&RowGeometry::new(6, 10, 5), 6, 15, 10);
    }

    #[test]
    fn diagonal_geometry_satisfies_contract_coprime() {
        // gcd(S, M) = 1 (paper's own shape: gcd(82, 53477·…) — here 6, 11).
        check_contract(&DiagonalGeometry::new(6, 11, 4, &[]), 6, 15, 11);
    }

    #[test]
    fn diagonal_geometry_satisfies_contract_non_coprime() {
        // gcd(6, 10) = 2: exercises the cycle-offset wraparound.
        check_contract(&DiagonalGeometry::new(6, 10, 5, &[]), 6, 15, 10);
        // gcd(4, 12) = 4.
        check_contract(&DiagonalGeometry::new(4, 12, 3, &[]), 4, 15, 12);
    }

    #[test]
    fn diagonal_geometry_with_reliability_classes() {
        // Fig. 8b: first and last rows excluded, the rest interleaved.
        let geom = DiagonalGeometry::new(6, 10, 5, &[0, 5]);
        check_contract(&geom, 6, 15, 10);
        // Excluded rows are pure row-codewords.
        for k in [0usize, 5] {
            let pos = geom.codeword_positions(k);
            assert!(pos.iter().all(|&(r, _)| r == k));
        }
        // Interleaved codewords never touch excluded rows.
        for k in [1usize, 2, 3, 4] {
            let pos = geom.codeword_positions(k);
            assert!(pos.iter().all(|&(r, _)| r != 0 && r != 5));
        }
    }

    #[test]
    fn diagonal_codeword_spreads_across_rows() {
        // Every diagonal codeword must sample every included row with near
        // equal frequency (the de-biasing property).
        let geom = DiagonalGeometry::new(5, 50, 10, &[]);
        for k in 0..5 {
            let pos = geom.codeword_positions(k);
            let mut per_row = [0usize; 5];
            for &(r, _) in &pos[..50] {
                per_row[r] += 1;
            }
            for (r, &count) in per_row.iter().enumerate() {
                assert_eq!(count, 10, "codeword {k} row {r}");
            }
        }
    }

    #[test]
    fn baseline_codeword_is_one_row() {
        let geom = RowGeometry::new(4, 8, 2);
        let pos = geom.codeword_positions(2);
        assert!(pos.iter().all(|&(r, _)| r == 2));
        assert_eq!(pos.len(), 10);
    }

    #[test]
    fn paper_scale_shapes_are_consistent() {
        // Laptop scale (30, 208, 47): gcd(30, 208) = 2.
        check_contract(&DiagonalGeometry::new(30, 208, 47, &[]), 30, 255, 208);
    }
}
