//! The versioned, persisted manifest: `object_id → capsule ranges →
//! primer pairs → protection plan`.
//!
//! The manifest is deliberately a deterministic *text* format: it diffs,
//! it greps, and its FNV-1a hash is stable enough to pin in the golden
//! conformance tables. It lives twice — as the `MANIFEST` sidecar file
//! next to `pool.dna` (the fast path) and serialized into a reserved
//! **super-capsule** inside the pool itself (the durable path: losing the
//! sidecar costs one capsule decode, not the pool). A trailing
//! `# end crc=` line authenticates the body; any parse failure or CRC
//! mismatch surfaces as [`StorageError::ManifestCorrupt`], with
//! `ObjectStore::rebuild_manifest` as the documented full-scan fallback.

use crate::checksum::fnv64;
use dna_storage::StorageError;
use std::fmt::Write as _;
use std::ops::Range;

fn corrupt(reason: impl Into<String>) -> StorageError {
    StorageError::ManifestCorrupt {
        reason: reason.into(),
    }
}

/// One stored object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectEntry {
    /// Object id (1-based; 0 is reserved for the manifest itself).
    pub id: u64,
    /// Object name (unique per store at `put` time).
    pub name: String,
    /// Payload bytes.
    pub bytes: u64,
    /// The contiguous capsule sequence range holding the payload.
    pub capsules: Range<u32>,
    /// Whether the object has been deleted.
    pub tombstone: bool,
}

/// One data capsule's manifest line: where it lives and how to address it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapsuleEntry {
    /// Pool-wide capsule sequence number.
    pub seq: u32,
    /// Owning object id.
    pub object_id: u64,
    /// Encoding units in the capsule.
    pub units: u32,
    /// Payload bytes before compression.
    pub plain_len: u64,
    /// Bytes encoded (post-compression).
    pub stored_len: u64,
    /// Capsule flag bits (`FLAG_*`).
    pub flags: u16,
    /// Byte offset of the capsule record in `pool.dna`.
    pub offset: u64,
    /// Left primer sequence (the PCR address, as bases).
    pub left: String,
    /// Right primer sequence.
    pub right: String,
}

/// The store index: objects, their capsules, and the allocation cursor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Seed that derives capsule primer pairs.
    pub pool_seed: u64,
    /// Next object id to allocate.
    pub next_id: u64,
    /// Next capsule sequence number to allocate (super-capsules included).
    pub next_seq: u32,
    /// Human-readable protection plan summary (e.g. `parity:47..47`).
    pub plan: String,
    objects: Vec<ObjectEntry>,
    capsules: Vec<CapsuleEntry>,
}

impl Manifest {
    /// An empty manifest for a fresh pool.
    pub fn new(pool_seed: u64, plan: String) -> Manifest {
        Manifest {
            pool_seed,
            next_id: 1,
            next_seq: 0,
            plan,
            objects: Vec::new(),
            capsules: Vec::new(),
        }
    }

    /// The objects, in `put` order (tombstoned objects included).
    pub fn objects(&self) -> &[ObjectEntry] {
        &self.objects
    }

    /// The data capsules, in append order.
    pub fn capsules(&self) -> &[CapsuleEntry] {
        &self.capsules
    }

    /// Looks an object up by id.
    pub fn object(&self, id: u64) -> Option<&ObjectEntry> {
        self.objects.iter().find(|o| o.id == id)
    }

    /// Looks a live (non-tombstoned) object up by name.
    pub fn object_by_name(&self, name: &str) -> Option<&ObjectEntry> {
        self.objects.iter().find(|o| o.name == name && !o.tombstone)
    }

    /// The capsule entry for sequence number `seq`.
    pub fn capsule(&self, seq: u32) -> Option<&CapsuleEntry> {
        self.capsules.iter().find(|c| c.seq == seq)
    }

    /// Registers a new object and its capsules.
    pub fn push_object(&mut self, entry: ObjectEntry, capsules: Vec<CapsuleEntry>) {
        self.objects.push(entry);
        self.capsules.extend(capsules);
    }

    /// Marks `id` tombstoned. Returns whether the object existed live.
    pub fn tombstone(&mut self, id: u64) -> bool {
        match self.objects.iter_mut().find(|o| o.id == id && !o.tombstone) {
            Some(o) => {
                o.tombstone = true;
                true
            }
            None => false,
        }
    }

    /// Serializes to the deterministic v1 text format, CRC line included.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("# dnaobj manifest v1\n");
        let _ = writeln!(out, "pool_seed={}", self.pool_seed);
        let _ = writeln!(out, "next_id={}", self.next_id);
        let _ = writeln!(out, "next_seq={}", self.next_seq);
        let _ = writeln!(out, "plan={}", self.plan);
        let _ = writeln!(out, "objects={}", self.objects.len());
        let _ = writeln!(out, "capsules={}", self.capsules.len());
        for o in &self.objects {
            let _ = writeln!(
                out,
                "object id={} bytes={} capsules={}..{} tombstone={} name={}",
                o.id,
                o.bytes,
                o.capsules.start,
                o.capsules.end,
                u8::from(o.tombstone),
                o.name
            );
        }
        for c in &self.capsules {
            let _ = writeln!(
                out,
                "capsule seq={} object={} units={} plain={} stored={} flags={} offset={} left={} right={}",
                c.seq, c.object_id, c.units, c.plain_len, c.stored_len, c.flags, c.offset, c.left, c.right
            );
        }
        let crc = fnv64(out.as_bytes());
        let _ = writeln!(out, "# end crc={crc:016x}");
        out
    }

    /// The manifest fingerprint: FNV-1a of the full serialized text. This
    /// is the value pinned in the golden conformance tables.
    pub fn hash(&self) -> u64 {
        fnv64(self.to_text().as_bytes())
    }

    /// Crash-consistently persists the serialized manifest as the
    /// `dir/file_name` sidecar: write to `<file_name>.tmp`, fsync the
    /// data, rename atomically into place, then fsync the directory so
    /// the rename itself is durable. A torn write can therefore never
    /// leave a half-written sidecar shadowing a healthy in-pool
    /// super-capsule — readers observe either the previous complete
    /// sidecar or the new complete one, never a prefix.
    ///
    /// # Errors
    ///
    /// [`StorageError::Io`] on any filesystem failure (the `.tmp` file
    /// may remain; it is overwritten by the next commit).
    pub fn commit_sidecar(
        &self,
        dir: &std::path::Path,
        file_name: &str,
    ) -> Result<(), StorageError> {
        use std::io::Write as _;
        let text = self.to_text();
        let tmp = dir.join(format!("{file_name}.tmp"));
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_all()?;
        drop(f);
        std::fs::rename(&tmp, dir.join(file_name))?;
        // Make the rename durable too. Directories cannot be fsynced on
        // every platform; where they cannot, the rename is still atomic
        // and this is a no-op rather than an error.
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }

    /// Parses and validates the v1 text format.
    ///
    /// # Errors
    ///
    /// [`StorageError::ManifestCorrupt`] on any structural problem: bad
    /// header, truncated body, count mismatch, unparseable line, or CRC
    /// mismatch.
    pub fn from_text(text: &str) -> Result<Manifest, StorageError> {
        let mut lines = text.lines();
        if lines.next() != Some("# dnaobj manifest v1") {
            return Err(corrupt("missing or unsupported manifest version line"));
        }
        let crc_line = text
            .lines()
            .last()
            .ok_or_else(|| corrupt("empty manifest"))?;
        let crc_hex = crc_line
            .strip_prefix("# end crc=")
            .ok_or_else(|| corrupt("missing trailing CRC line (truncated manifest)"))?;
        let stored_crc =
            u64::from_str_radix(crc_hex, 16).map_err(|_| corrupt("unparseable CRC line"))?;
        let body_len = text.len() - crc_line.len() - 1;
        let computed = fnv64(&text.as_bytes()[..body_len]);
        if computed != stored_crc {
            return Err(corrupt(format!(
                "CRC mismatch: manifest says {stored_crc:016x}, body hashes to {computed:016x}"
            )));
        }
        let pool_seed = parse_kv(lines.next(), "pool_seed")?;
        let next_id = parse_kv(lines.next(), "next_id")?;
        let next_seq = parse_kv::<u32>(lines.next(), "next_seq")?;
        let plan_line = lines.next().ok_or_else(|| corrupt("missing plan line"))?;
        let plan = plan_line
            .strip_prefix("plan=")
            .ok_or_else(|| corrupt("missing plan line"))?
            .to_string();
        let n_objects = parse_kv::<usize>(lines.next(), "objects")?;
        let n_capsules = parse_kv::<usize>(lines.next(), "capsules")?;
        let mut objects = Vec::with_capacity(n_objects);
        let mut capsules = Vec::with_capacity(n_capsules);
        for _ in 0..n_objects {
            let line = lines
                .next()
                .ok_or_else(|| corrupt("manifest truncated inside object list"))?;
            objects.push(parse_object_line(line)?);
        }
        for _ in 0..n_capsules {
            let line = lines
                .next()
                .ok_or_else(|| corrupt("manifest truncated inside capsule list"))?;
            capsules.push(parse_capsule_line(line)?);
        }
        match lines.next() {
            Some(l) if l == crc_line => {}
            _ => return Err(corrupt("unexpected trailing content before CRC line")),
        }
        Ok(Manifest {
            pool_seed,
            next_id,
            next_seq,
            plan,
            objects,
            capsules,
        })
    }
}

fn parse_kv<T: std::str::FromStr>(line: Option<&str>, key: &str) -> Result<T, StorageError> {
    let line = line.ok_or_else(|| corrupt(format!("missing {key} line")))?;
    let value = line
        .strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
        .ok_or_else(|| corrupt(format!("expected `{key}=`, got `{line}`")))?;
    value
        .parse()
        .map_err(|_| corrupt(format!("unparseable {key} value `{value}`")))
}

/// Splits `key=value` fields off a line of space-separated pairs. The
/// final `name=` field consumes the rest of the line (names may not
/// contain spaces, enforced at `put`, but this keeps parsing unambiguous).
fn field<'a>(
    parts: &mut std::str::SplitWhitespace<'a>,
    key: &str,
) -> Result<&'a str, StorageError> {
    let part = parts
        .next()
        .ok_or_else(|| corrupt(format!("missing field {key}")))?;
    part.strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
        .ok_or_else(|| corrupt(format!("expected field `{key}=`, got `{part}`")))
}

fn parse_object_line(line: &str) -> Result<ObjectEntry, StorageError> {
    let rest = line
        .strip_prefix("object ")
        .ok_or_else(|| corrupt(format!("expected object line, got `{line}`")))?;
    let mut parts = rest.split_whitespace();
    let id = parse_field(field(&mut parts, "id")?, "id")?;
    let bytes = parse_field(field(&mut parts, "bytes")?, "bytes")?;
    let range = field(&mut parts, "capsules")?;
    let (start, end) = range
        .split_once("..")
        .ok_or_else(|| corrupt(format!("bad capsule range `{range}`")))?;
    let capsules = parse_field::<u32>(start, "capsule range start")?
        ..parse_field::<u32>(end, "capsule range end")?;
    let tombstone = parse_field::<u8>(field(&mut parts, "tombstone")?, "tombstone")? != 0;
    let name = field(&mut parts, "name")?.to_string();
    Ok(ObjectEntry {
        id,
        name,
        bytes,
        capsules,
        tombstone,
    })
}

fn parse_capsule_line(line: &str) -> Result<CapsuleEntry, StorageError> {
    let rest = line
        .strip_prefix("capsule ")
        .ok_or_else(|| corrupt(format!("expected capsule line, got `{line}`")))?;
    let mut parts = rest.split_whitespace();
    Ok(CapsuleEntry {
        seq: parse_field(field(&mut parts, "seq")?, "seq")?,
        object_id: parse_field(field(&mut parts, "object")?, "object")?,
        units: parse_field(field(&mut parts, "units")?, "units")?,
        plain_len: parse_field(field(&mut parts, "plain")?, "plain")?,
        stored_len: parse_field(field(&mut parts, "stored")?, "stored")?,
        flags: parse_field(field(&mut parts, "flags")?, "flags")?,
        offset: parse_field(field(&mut parts, "offset")?, "offset")?,
        left: field(&mut parts, "left")?.to_string(),
        right: field(&mut parts, "right")?.to_string(),
    })
}

fn parse_field<T: std::str::FromStr>(value: &str, key: &str) -> Result<T, StorageError> {
    value
        .parse()
        .map_err(|_| corrupt(format!("unparseable {key} value `{value}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        let mut m = Manifest::new(99, "parity:5..5".into());
        m.push_object(
            ObjectEntry {
                id: 1,
                name: "alpha.bin".into(),
                bytes: 1234,
                capsules: 0..2,
                tombstone: false,
            },
            vec![
                CapsuleEntry {
                    seq: 0,
                    object_id: 1,
                    units: 3,
                    plain_len: 90,
                    stored_len: 90,
                    flags: 0,
                    offset: 46,
                    left: "ACGTACGTACGT".into(),
                    right: "TGCATGCATGCA".into(),
                },
                CapsuleEntry {
                    seq: 1,
                    object_id: 1,
                    units: 1,
                    plain_len: 10,
                    stored_len: 10,
                    flags: 2,
                    offset: 500,
                    left: "ACGTACGTACGT".into(),
                    right: "TGCATGCATGCA".into(),
                },
            ],
        );
        m.next_id = 2;
        m.next_seq = 2;
        m
    }

    #[test]
    fn text_round_trips() {
        let m = sample();
        let text = m.to_text();
        let back = Manifest::from_text(&text).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.hash(), m.hash());
    }

    #[test]
    fn truncated_manifest_is_corrupt() {
        let text = sample().to_text();
        // Drop the CRC line entirely.
        let cut = text.lines().take(5).collect::<Vec<_>>().join("\n");
        assert!(matches!(
            Manifest::from_text(&cut),
            Err(StorageError::ManifestCorrupt { .. })
        ));
        // Flip a byte in the body: CRC catches it.
        let tampered = text.replace("bytes=1234", "bytes=1235");
        assert!(matches!(
            Manifest::from_text(&tampered),
            Err(StorageError::ManifestCorrupt { .. })
        ));
    }

    #[test]
    fn tombstone_marks_once() {
        let mut m = sample();
        assert!(m.tombstone(1));
        assert!(!m.tombstone(1), "already tombstoned");
        assert!(!m.tombstone(7), "unknown id");
        assert!(m.object(1).unwrap().tombstone);
        assert!(m.object_by_name("alpha.bin").is_none());
    }

    #[test]
    fn hash_is_content_sensitive() {
        let a = sample();
        let mut b = sample();
        b.tombstone(1);
        assert_ne!(a.hash(), b.hash());
    }
}
