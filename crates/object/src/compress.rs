//! Zero-run-length compression for capsule payloads.
//!
//! DNA capacity is the scarce resource, so capsules optionally squeeze
//! their payload before the (optional) cipher and the EC encode. The
//! scheme is deliberately tiny and dependency-free: zero bytes — by far
//! the most common filler in padded, sector-aligned, or sparse data — are
//! run-length encoded, everything else is copied verbatim.
//!
//! Stream grammar: a non-zero byte represents itself; a `0x00` byte is
//! always followed by a run length `1..=255` counting the zeros it stands
//! for. The encoder never emits an expansion larger than the input plus
//! one byte per zero run, and [`compress`] returns `None` when the result
//! would not actually be smaller — the capsule then stores the plain bytes
//! and leaves its `COMPRESSED` flag clear.

/// Compresses `data`, returning `None` unless the output is strictly
/// smaller than the input (store-uncompressed fallback).
pub fn compress(data: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(data.len());
    let mut i = 0usize;
    while i < data.len() {
        let b = data[i];
        if b != 0 {
            out.push(b);
            i += 1;
            continue;
        }
        let mut run = 1usize;
        while run < 255 && i + run < data.len() && data[i + run] == 0 {
            run += 1;
        }
        out.push(0);
        out.push(run as u8);
        i += run;
        if out.len() >= data.len() {
            return None;
        }
    }
    if out.len() < data.len() {
        Some(out)
    } else {
        None
    }
}

/// Decompresses a [`compress`] stream, validating that it expands to
/// exactly `plain_len` bytes.
pub fn decompress(data: &[u8], plain_len: usize) -> Result<Vec<u8>, String> {
    let mut out = Vec::with_capacity(plain_len);
    let mut i = 0usize;
    while i < data.len() {
        let b = data[i];
        i += 1;
        if b != 0 {
            out.push(b);
            continue;
        }
        let Some(&run) = data.get(i) else {
            return Err("zero-run marker at end of stream".into());
        };
        i += 1;
        if run == 0 {
            return Err("zero-length zero run".into());
        }
        out.resize(out.len() + usize::from(run), 0);
        if out.len() > plain_len {
            return Err(format!("decompressed past expected length {plain_len}"));
        }
    }
    if out.len() != plain_len {
        return Err(format!(
            "decompressed to {} bytes, expected {plain_len}",
            out.len()
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_zero_heavy_data() {
        let mut data = vec![0u8; 1000];
        data[10] = 7;
        data[500] = 255;
        let packed = compress(&data).expect("should shrink");
        assert!(packed.len() < 20, "packed {} bytes", packed.len());
        assert_eq!(decompress(&packed, data.len()).unwrap(), data);
    }

    #[test]
    fn incompressible_data_returns_none() {
        let data: Vec<u8> = (0..512).map(|i| (i % 255 + 1) as u8).collect();
        assert!(compress(&data).is_none());
    }

    #[test]
    fn long_runs_split_at_255() {
        let data = vec![0u8; 700];
        let packed = compress(&data).unwrap();
        assert_eq!(packed, vec![0, 255, 0, 255, 0, 190]);
        assert_eq!(decompress(&packed, 700).unwrap(), data);
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert!(compress(&[]).is_none());
        assert!(compress(&[0]).is_none()); // 0 -> [0,1] expands
        assert_eq!(decompress(&[], 0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn corrupt_streams_are_rejected() {
        assert!(decompress(&[0], 5).is_err()); // marker without length
        assert!(decompress(&[0, 0], 5).is_err()); // zero-length run
        assert!(decompress(&[0, 9], 5).is_err()); // overruns plain_len
        assert!(decompress(&[1, 2], 5).is_err()); // underruns plain_len
    }
}
