//! Self-contained integrity primitives for the pool format.
//!
//! Capsule headers carry a CRC-32 (IEEE, reflected) so a scan can reject a
//! torn header cheaply; capsule payload sections carry a CRC-64/ECMA over
//! the packed strand bytes; the manifest text and key fingerprints use
//! FNV-1a (64-bit), matching the hash used by the repo's golden
//! conformance tables.

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`).
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-64/ECMA (reflected polynomial `0xC96C5795D7870F42`), used for the
/// capsule trailer over the packed strand bytes.
pub fn crc64(data: &[u8]) -> u64 {
    const TABLE: [u64; 256] = crc64_table();
    let mut crc = 0xFFFF_FFFF_FFFF_FFFFu64;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u64::from(b)) & 0xFF) as usize];
    }
    !crc
}

const fn crc64_table() -> [u64; 256] {
    let mut table = [0u64; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xC96C_5795_D787_0F42
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// FNV-1a 64-bit, the repo's golden-table hash: manifest fingerprints and
/// encryption-key fingerprints.
pub fn fnv64(data: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_check_value() {
        // The CRC catalogue check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc64_check_value() {
        // The CRC catalogue check value for CRC-64/XZ (reflected ECMA).
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
    }

    #[test]
    fn fnv64_check_value() {
        // Classic FNV-1a vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn checksums_differ_on_bit_flip() {
        let a = b"capsule payload".to_vec();
        let mut b = a.clone();
        b[3] ^= 1;
        assert_ne!(crc32(&a), crc32(&b));
        assert_ne!(crc64(&a), crc64(&b));
        assert_ne!(fnv64(&a), fnv64(&b));
    }
}
