//! [`ObjectStore`]: put/fetch/list/delete over a capsule pool.
//!
//! The store streams: `put` reads any [`std::io::Read`] one capsule's
//! worth of payload at a time (compress → encrypt → EC-encode → append),
//! and `fetch` walks only the target object's capsule records (primer
//! check → decode → decrypt → decompress → [`std::io::Write`]), so peak
//! memory is a few capsule buffers regardless of object or pool size.
//!
//! Every mutation commits the manifest twice: the `MANIFEST` sidecar file
//! (fast open) and a reserved super-capsule appended to `pool.dna`
//! (durable: the pool carries its own index). `open` prefers the sidecar,
//! falls back to the newest super-capsule, and returns
//! [`StorageError::ManifestMissing`] when neither exists —
//! [`ObjectStore::rebuild_manifest`] is the last-resort full scan.

use crate::capsule::{
    capsule_primers, capsule_primers_attempt, scan_capsules, CapsuleHeader, LayoutKind, PoolHeader,
    FLAG_COMPRESSED, FLAG_ENCRYPTED, FLAG_MANIFEST, FLAG_TOMBSTONE, MANIFEST_OBJECT_ID,
    MAX_NAME_LEN,
};
use crate::checksum::fnv64;
use crate::compress;
use crate::manifest::{CapsuleEntry, Manifest, ObjectEntry};
use dna_channel::{AnonymousPool, ReadPool};
use dna_crypto::ChaCha20;
use dna_storage::{CodecParams, DecodeWorkspace, Layout, Pipeline, StorageError};
use dna_strand::constraints::ConstraintSet;
use dna_strand::{DnaString, Primer, TranscoderSpec};
use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Pool file name inside the store directory.
pub const POOL_FILE: &str = "pool.dna";
/// Manifest sidecar file name.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// Default pool seed (primer derivation), matching the pipeline's default
/// primer seed lineage.
pub const DEFAULT_POOL_SEED: u64 = 0xD2A7_2022;

/// Store creation parameters.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Unit geometry (must have `primer_len() > 0`: primers are the
    /// address space).
    pub params: CodecParams,
    /// Layout engine (built-ins only; recorded in the pool header).
    pub layout: Layout,
    /// Encoding units per data capsule: the random-access granularity.
    pub units_per_capsule: u32,
    /// Seed deriving every capsule's primer pair.
    pub pool_seed: u64,
    /// Whether to try zero-RLE compression per capsule.
    pub compress: bool,
    /// Optional ChaCha20 key: capsules are encrypted after compression.
    pub key: Option<[u8; 32]>,
}

impl StoreConfig {
    /// Laptop-scale store: GF(2^8) units, 16-base primers, 16 units
    /// (≈ 99.8 KB payload) per capsule, Gini layout.
    ///
    /// # Errors
    ///
    /// Propagates [`StorageError::InvalidParams`] (never in practice).
    pub fn laptop() -> Result<StoreConfig, StorageError> {
        Ok(StoreConfig {
            params: CodecParams::laptop()?.with_primer_len(16),
            layout: Layout::Gini {
                excluded_rows: vec![],
            },
            units_per_capsule: 16,
            pool_seed: DEFAULT_POOL_SEED,
            compress: true,
            key: None,
        })
    }

    /// Test-scale store: GF(2^4) tiny units, 12-base primers, 3 units
    /// (90 B payload) per capsule.
    ///
    /// # Errors
    ///
    /// Propagates [`StorageError::InvalidParams`] (never in practice).
    pub fn tiny() -> Result<StoreConfig, StorageError> {
        Ok(StoreConfig {
            params: CodecParams::tiny()?.with_primer_len(12),
            layout: Layout::Gini {
                excluded_rows: vec![],
            },
            units_per_capsule: 3,
            pool_seed: DEFAULT_POOL_SEED,
            compress: true,
            key: None,
        })
    }

    /// Enables encryption under `key`.
    pub fn with_key(mut self, key: [u8; 32]) -> StoreConfig {
        self.key = Some(key);
        self
    }

    /// Sets per-capsule compression.
    pub fn with_compression(mut self, on: bool) -> StoreConfig {
        self.compress = on;
        self
    }

    /// Sets the capsule size in units.
    pub fn with_units_per_capsule(mut self, units: u32) -> StoreConfig {
        self.units_per_capsule = units;
        self
    }

    /// Sets the primer-derivation seed.
    pub fn with_pool_seed(mut self, seed: u64) -> StoreConfig {
        self.pool_seed = seed;
        self
    }
}

/// How `fetch` turns capsule records back into payload.
#[derive(Debug, Clone, Default)]
pub struct FetchOptions {
    /// Route each unit's reads through the unlabeled-pool recovery
    /// pipeline ([`AnonymousPool`] → cluster → orient → demux → decode)
    /// instead of the direct coverage-1 decode. Slower, but exercises the
    /// capsule-scoped recovery path a real (noisy, unordered) pool needs.
    pub via_recovery: bool,
}

/// What one `fetch` touched — the receipt proving per-object retrieval
/// cost scales with the object, not the pool.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FetchReport {
    /// Capsule records read.
    pub capsules: usize,
    /// Encoding units decoded.
    pub units: usize,
    /// Reads (strands) fed to the decoder.
    pub reads: usize,
    /// Reads dropped by the primer prefilter.
    pub prefilter_dropped: usize,
    /// Payload bytes written out.
    pub bytes: u64,
}

/// What a full-pool scan-and-rebuild recovered.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RebuildReport {
    /// Live objects recovered.
    pub objects: usize,
    /// Data capsules indexed.
    pub capsules: usize,
    /// Manifest super-capsules seen (and skipped).
    pub super_capsules: usize,
    /// Tombstones applied.
    pub tombstones: usize,
}

/// Redraw budget for the cross-capsule primer-collision loop: with
/// collisions at the ~10⁻⁴ scale per issued pair, exhausting this means
/// the pool seed is degenerate, not unlucky.
const MAX_PRIMER_DRAW_ATTEMPTS: u32 = 64;

/// Minimum Hamming distance enforced between any two *issued* payload
/// primer pairs (left↔left, right↔right, and crosswise). A quarter of
/// the primer length keeps the prefilter window — an exact primer-length
/// prefix/suffix match — unambiguous even under a few read errors.
pub fn cross_primer_min_distance(primer_len: usize) -> usize {
    (primer_len / 4).max(1)
}

/// Whether two primer pairs fall inside each other's prefilter window:
/// any of the four left/right combinations closer than `min_distance`.
fn primer_pairs_collide(a: &(Primer, Primer), b: &(Primer, Primer), min_distance: usize) -> bool {
    let close = |x: &Primer, y: &Primer| {
        x.strand()
            .hamming_distance(y.strand())
            .map(|d| d < min_distance)
            .unwrap_or(false) // different lengths never collide
    };
    close(&a.0, &b.0) || close(&a.1, &b.1) || close(&a.0, &b.1) || close(&a.1, &b.0)
}

/// A streaming, primer-addressed object store over a capsule pool.
#[derive(Debug)]
pub struct ObjectStore {
    dir: PathBuf,
    header: PoolHeader,
    base: Pipeline,
    manifest: Manifest,
    key: Option<[u8; 32]>,
    /// Every payload-capsule primer pair this pool has issued, rebuilt
    /// from the manifest on open: `put` checks new draws against all of
    /// them and redraws on a prefilter-window collision. (Manifest and
    /// tombstone capsules are located by flags/offset, never by primer
    /// selection, so they are not tracked.)
    issued_pairs: Vec<(Primer, Primer)>,
}

impl ObjectStore {
    /// Creates a fresh store in `dir` (created if absent; fails if a pool
    /// already exists there).
    ///
    /// # Errors
    ///
    /// [`StorageError::InvalidParams`] for unusable configs (no primers,
    /// zero-unit capsules, existing pool); [`StorageError::Io`] on
    /// filesystem failures.
    pub fn create(dir: impl AsRef<Path>, config: StoreConfig) -> Result<ObjectStore, StorageError> {
        let dir = dir.as_ref().to_path_buf();
        if config.params.primer_len() == 0 {
            return Err(StorageError::InvalidParams(
                "object stores require primer_len > 0 (primers are the address space)".into(),
            ));
        }
        if config.units_per_capsule == 0 {
            return Err(StorageError::InvalidParams(
                "units_per_capsule must be at least 1".into(),
            ));
        }
        let layout_kind = LayoutKind::from_layout(&config.layout)?;
        std::fs::create_dir_all(&dir)?;
        let pool_path = dir.join(POOL_FILE);
        if pool_path.exists() {
            return Err(StorageError::InvalidParams(format!(
                "a pool already exists at {}",
                pool_path.display()
            )));
        }
        let transcoder = config.params.transcoder();
        let header = PoolHeader {
            // Direct pools keep the version-1 byte layout so files stay
            // identical to pre-transcoder tooling; anything else needs the
            // version-2 transcoder byte.
            version: if transcoder == TranscoderSpec::Direct {
                1
            } else {
                2
            },
            field_width: config.params.field().width(),
            layout: layout_kind,
            rows: config.params.rows() as u16,
            data_cols: config.params.data_cols() as u16,
            parity_cols: config.params.parity_cols() as u16,
            index_bits: config.params.index_bits(),
            transcoder,
            primer_len: config.params.primer_len() as u16,
            units_per_capsule: config.units_per_capsule,
            pool_seed: config.pool_seed,
            key_fingerprint: config.key.map(|k| fnv64(&k)).unwrap_or(0),
        };
        let base = Pipeline::builder()
            .params(config.params.clone())
            .layout(config.layout.clone())
            .build()?;
        let mut file = BufWriter::new(File::create(&pool_path)?);
        header.write_to(&mut file)?;
        file.flush()?;
        drop(file);
        let plan = plan_summary(&base);
        let mut store = ObjectStore {
            dir,
            header,
            base,
            manifest: Manifest::new(config.pool_seed, plan),
            key: config.key,
            issued_pairs: Vec::new(),
        };
        // Compression is a per-store choice but not a decode-relevant one
        // (the capsule flag decides decoding), so it rides in the plan
        // string rather than the binary header.
        if !config.compress {
            store.manifest.plan.push_str(" compress:off");
        }
        store.commit()?;
        Ok(store)
    }

    fn compress_enabled(&self) -> bool {
        !self.manifest.plan.ends_with("compress:off")
    }

    /// Opens an unencrypted (or encrypted-but-browse-only) store.
    ///
    /// # Errors
    ///
    /// [`StorageError::ManifestMissing`] when neither the sidecar nor a
    /// super-capsule yields a manifest; [`StorageError::ManifestCorrupt`]
    /// when one exists but fails validation;
    /// [`StorageError::PoolTruncated`] when the sidecar is absent and
    /// `pool.dna` ends mid-record (the super-capsule scan cannot finish).
    pub fn open(dir: impl AsRef<Path>) -> Result<ObjectStore, StorageError> {
        Self::open_inner(dir.as_ref(), None)
    }

    /// Opens a store whose capsules were encrypted under `key`.
    ///
    /// # Errors
    ///
    /// As [`ObjectStore::open`], plus [`StorageError::InvalidParams`] when
    /// the key does not match the pool's key fingerprint.
    pub fn open_with_key(
        dir: impl AsRef<Path>,
        key: [u8; 32],
    ) -> Result<ObjectStore, StorageError> {
        Self::open_inner(dir.as_ref(), Some(key))
    }

    fn open_inner(dir: &Path, key: Option<[u8; 32]>) -> Result<ObjectStore, StorageError> {
        let dir = dir.to_path_buf();
        let pool_path = dir.join(POOL_FILE);
        let mut file = BufReader::new(File::open(&pool_path)?);
        let header = PoolHeader::read_from(&mut file)?;
        if let Some(k) = &key {
            if header.key_fingerprint != fnv64(k) {
                return Err(StorageError::InvalidParams(
                    "key fingerprint mismatch: wrong key for this pool".into(),
                ));
            }
        }
        let params = header.params()?;
        let base = Pipeline::builder()
            .params(params)
            .layout(header.layout.to_layout())
            .build()?;
        let manifest_path = dir.join(MANIFEST_FILE);
        let manifest = if manifest_path.exists() {
            let text = std::fs::read_to_string(&manifest_path)?;
            Manifest::from_text(&text)?
        } else {
            Self::recover_manifest(&mut file, &header, &base)?
        };
        let issued_pairs = issued_pairs_from_manifest(&manifest)?;
        Ok(ObjectStore {
            dir,
            header,
            base,
            manifest,
            key,
            issued_pairs,
        })
    }

    /// Decodes the newest manifest super-capsule out of the pool.
    fn recover_manifest(
        file: &mut (impl Read + Seek),
        header: &PoolHeader,
        base: &Pipeline,
    ) -> Result<Manifest, StorageError> {
        let strand_bases = base.params().strand_bases();
        let records = scan_capsules(file, header, strand_bases)?;
        let newest = records
            .iter()
            .rev()
            .find(|(_, cap)| cap.flags & FLAG_MANIFEST != 0)
            .cloned();
        let Some((offset, cap)) = newest else {
            return Err(StorageError::ManifestMissing);
        };
        let (stored, _, _) = decode_capsule_at(file, header, base, offset, &cap, false)?;
        let text = String::from_utf8(stored).map_err(|_| StorageError::ManifestCorrupt {
            reason: "super-capsule payload is not UTF-8".into(),
        })?;
        Manifest::from_text(&text)
    }

    /// Full-pool scan-and-rebuild: reconstructs the manifest from capsule
    /// headers alone (the fallback for [`StorageError::ManifestMissing`] /
    /// [`StorageError::ManifestCorrupt`]), persists it, and returns the
    /// opened store plus a report of what was recovered.
    ///
    /// # Errors
    ///
    /// [`StorageError::PoolTruncated`] when `pool.dna` ends mid-record
    /// (torn append or external chop — the scan cannot continue past
    /// it); [`StorageError::ManifestCorrupt`] when a capsule header is
    /// structurally invalid; I/O errors as [`StorageError::Io`].
    pub fn rebuild_manifest(
        dir: impl AsRef<Path>,
    ) -> Result<(ObjectStore, RebuildReport), StorageError> {
        let dir = dir.as_ref().to_path_buf();
        let pool_path = dir.join(POOL_FILE);
        let mut file = BufReader::new(File::open(&pool_path)?);
        let header = PoolHeader::read_from(&mut file)?;
        let params = header.params()?;
        let base = Pipeline::builder()
            .params(params)
            .layout(header.layout.to_layout())
            .build()?;
        let strand_bases = base.params().strand_bases();
        let records = scan_capsules(&mut file, &header, strand_bases)?;
        drop(file);

        let mut manifest = Manifest::new(header.pool_seed, plan_summary(&base));
        let mut report = RebuildReport::default();
        let mut max_seq = 0u32;
        let mut tombstones: Vec<u64> = Vec::new();
        // Objects' capsules are contiguous (one `put` appends them all),
        // so group runs of equal object_id in file order.
        let mut open_object: Option<(ObjectEntry, Vec<CapsuleEntry>)> = None;
        for (offset, cap) in &records {
            max_seq = max_seq.max(cap.seq);
            if cap.flags & FLAG_MANIFEST != 0 {
                report.super_capsules += 1;
                continue;
            }
            if cap.flags & FLAG_TOMBSTONE != 0 {
                tombstones.push(cap.object_id);
                continue;
            }
            let same_object = open_object
                .as_ref()
                .is_some_and(|(o, _)| o.id == cap.object_id);
            if !same_object {
                if let Some((entry, caps)) = open_object.take() {
                    manifest.push_object(entry, caps);
                }
                open_object = Some((
                    ObjectEntry {
                        id: cap.object_id,
                        name: cap.name.clone(),
                        bytes: 0,
                        capsules: cap.seq..cap.seq,
                        tombstone: false,
                    },
                    Vec::new(),
                ));
            }
            let (entry, caps) = open_object.as_mut().expect("just opened");
            entry.bytes += cap.plain_len;
            entry.capsules.end = cap.seq + 1;
            caps.push(CapsuleEntry {
                seq: cap.seq,
                object_id: cap.object_id,
                units: cap.units,
                plain_len: cap.plain_len,
                stored_len: cap.stored_len,
                flags: cap.flags,
                offset: *offset,
                left: cap.left.strand().to_string(),
                right: cap.right.strand().to_string(),
            });
        }
        if let Some((entry, caps)) = open_object.take() {
            manifest.push_object(entry, caps);
        }
        for id in tombstones {
            if manifest.tombstone(id) {
                report.tombstones += 1;
            }
        }
        report.objects = manifest.objects().iter().filter(|o| !o.tombstone).count();
        report.capsules = manifest.capsules().len();
        manifest.next_id = manifest.objects().iter().map(|o| o.id).max().unwrap_or(0) + 1;
        manifest.next_seq = if records.is_empty() { 0 } else { max_seq + 1 };
        let issued_pairs = issued_pairs_from_manifest(&manifest)?;
        let mut store = ObjectStore {
            dir,
            header,
            base,
            manifest,
            key: None,
            issued_pairs,
        };
        store.commit()?;
        Ok((store, report))
    }

    /// Supplies the encryption key after a key-less [`ObjectStore::open`]
    /// or rebuild.
    ///
    /// # Errors
    ///
    /// [`StorageError::InvalidParams`] when the key does not match the
    /// pool's fingerprint.
    pub fn with_key(mut self, key: [u8; 32]) -> Result<ObjectStore, StorageError> {
        if self.header.key_fingerprint != fnv64(&key) {
            return Err(StorageError::InvalidParams(
                "key fingerprint mismatch: wrong key for this pool".into(),
            ));
        }
        self.key = Some(key);
        Ok(self)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The pool header (geometry, seeds, fingerprint).
    pub fn header(&self) -> &PoolHeader {
        &self.header
    }

    /// The current manifest.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The objects in the store, `put` order, tombstones included.
    pub fn list(&self) -> &[ObjectEntry] {
        self.manifest.objects()
    }

    /// The id of the live object named `name`.
    pub fn object_id(&self, name: &str) -> Option<u64> {
        self.manifest.object_by_name(name).map(|o| o.id)
    }

    /// Payload bytes one capsule can carry.
    pub fn capsule_capacity(&self) -> usize {
        self.header.units_per_capsule as usize * self.base.payload_capacity()
    }

    /// The payload-capsule primer pairs this pool has issued, in seq
    /// order (the collision-avoidance working set).
    pub fn issued_primer_pairs(&self) -> &[(Primer, Primer)] {
        &self.issued_pairs
    }

    /// Draws capsule `seq`'s primer pair, redrawing (salted attempts)
    /// until the pair clears every issued pair's prefilter window *and*
    /// both primers are junction-safe (neither edge run is long enough
    /// that one matching payload base would breach the homopolymer cap
    /// of the assembled strand), then records it as issued. The chosen
    /// pair is persisted in the capsule header and manifest, so this loop
    /// never reruns on the read path — old pools decode with whatever
    /// primers they recorded.
    ///
    /// # Errors
    ///
    /// [`StorageError::InvalidParams`] when
    /// [`MAX_PRIMER_DRAW_ATTEMPTS`] redraws cannot clear the pool (a
    /// degenerate pool seed), or the underlying primer search exhausts.
    fn draw_capsule_primers(&mut self, seq: u32) -> Result<(Primer, Primer), StorageError> {
        let len = self.base.params().primer_len();
        let min_distance = cross_primer_min_distance(len);
        let rules = ConstraintSet::primer_default();
        for attempt in 0..MAX_PRIMER_DRAW_ATTEMPTS {
            let pair = capsule_primers_attempt(self.header.pool_seed, seq, len, attempt)?;
            if rules.junction_safe(pair.0.strand())
                && rules.junction_safe(pair.1.strand())
                && self
                    .issued_pairs
                    .iter()
                    .all(|issued| !primer_pairs_collide(issued, &pair, min_distance))
            {
                self.issued_pairs.push(pair.clone());
                return Ok(pair);
            }
        }
        Err(StorageError::InvalidParams(format!(
            "capsule {seq}: no primer pair clears the pool's {} issued pairs after \
             {MAX_PRIMER_DRAW_ATTEMPTS} redraws (degenerate pool seed?)",
            self.issued_pairs.len()
        )))
    }

    /// Streams `reader` into the pool as a new object named `name`,
    /// returning its id. Peak memory is one capsule buffer plus the
    /// encoded strands of one capsule, independent of object size.
    ///
    /// # Errors
    ///
    /// [`StorageError::InvalidParams`] for bad names (empty, whitespace,
    /// too long, or duplicating a live object); [`StorageError::Io`] when
    /// `reader` or the pool file fails mid-stream (the manifest is not
    /// updated, but partially appended capsules remain in the pool file —
    /// harmless, as nothing references them, though `rebuild_manifest`
    /// will surface them).
    pub fn put(&mut self, name: &str, reader: &mut dyn Read) -> Result<u64, StorageError> {
        if name.is_empty() || name.len() > MAX_NAME_LEN || name.chars().any(char::is_whitespace) {
            return Err(StorageError::InvalidParams(format!(
                "object names must be 1..={MAX_NAME_LEN} bytes with no whitespace, got {name:?}"
            )));
        }
        if self.manifest.object_by_name(name).is_some() {
            return Err(StorageError::InvalidParams(format!(
                "an object named {name:?} already exists"
            )));
        }
        let id = self.manifest.next_id;
        let first_seq = self.manifest.next_seq;
        let capacity = self.capsule_capacity();
        let stride = keystream_stride_blocks(capacity);
        let pool_path = self.dir.join(POOL_FILE);
        let mut offset = std::fs::metadata(&pool_path)?.len();
        let mut file = BufWriter::new(OpenOptions::new().append(true).open(&pool_path)?);
        let mut buf = vec![0u8; capacity];
        let mut capsules: Vec<CapsuleEntry> = Vec::new();
        let mut total_bytes = 0u64;
        let mut seq = first_seq;
        loop {
            let n = read_full(reader, &mut buf)?;
            if n == 0 && !capsules.is_empty() {
                break;
            }
            let plain = &buf[..n];
            let mut flags = 0u16;
            let mut stored = if self.compress_enabled() {
                match compress::compress(plain) {
                    Some(packed) => {
                        flags |= FLAG_COMPRESSED;
                        packed
                    }
                    None => plain.to_vec(),
                }
            } else {
                plain.to_vec()
            };
            if let Some(key) = &self.key {
                flags |= FLAG_ENCRYPTED;
                let mut cipher = ChaCha20::new(key, &object_nonce(id));
                cipher.seek_block((seq - first_seq) * stride);
                cipher.apply_keystream(&mut stored);
            }
            let (left, right) = self.draw_capsule_primers(seq)?;
            let written = self.append_capsule(
                &mut file,
                CapsuleHeader {
                    seq,
                    object_id: id,
                    flags,
                    name: name.to_string(),
                    units: 0, // filled by append_capsule from the encode
                    plain_len: n as u64,
                    stored_len: stored.len() as u64,
                    left,
                    right,
                },
                &stored,
            )?;
            capsules.push(written.entry_at(offset));
            offset += written.bytes;
            total_bytes += n as u64;
            seq += 1;
            if n < capacity {
                break;
            }
        }
        file.flush()?;
        drop(file);
        self.manifest.next_id = id + 1;
        self.manifest.next_seq = seq;
        self.manifest.push_object(
            ObjectEntry {
                id,
                name: name.to_string(),
                bytes: total_bytes,
                capsules: first_seq..seq,
                tombstone: false,
            },
            capsules,
        );
        self.commit()?;
        Ok(id)
    }

    /// Convenience: stores an in-memory byte slice.
    ///
    /// # Errors
    ///
    /// As [`ObjectStore::put`].
    pub fn put_bytes(&mut self, name: &str, bytes: &[u8]) -> Result<u64, StorageError> {
        self.put(name, &mut std::io::Cursor::new(bytes))
    }

    /// Encodes `stored` into a capsule record appended at the writer's
    /// position. Returns the record's manifest entry ingredients.
    fn append_capsule<W: Write>(
        &self,
        w: &mut W,
        mut header: CapsuleHeader,
        stored: &[u8],
    ) -> Result<AppendedCapsule, StorageError> {
        let pipeline = self
            .base
            .clone()
            .with_primers(header.left.clone(), header.right.clone())?;
        let encoded = pipeline.encode_chunked(stored)?;
        let units: Vec<Vec<DnaString>> = encoded.iter().map(|u| u.strands().to_vec()).collect();
        header.units = units.len() as u32;
        let strand_bases = self.base.params().strand_bases();
        let mut bytes = header.write_to(w)?;
        bytes += crate::capsule::write_strands(w, &units, strand_bases)?;
        Ok(AppendedCapsule { header, bytes })
    }

    /// Fetches object `id`, streaming its payload into `writer`.
    ///
    /// # Errors
    ///
    /// [`StorageError::ObjectNotFound`] for unknown or tombstoned ids;
    /// [`StorageError::ManifestCorrupt`] when the manifest and pool
    /// disagree; [`StorageError::Io`] when `writer` fails mid-stream.
    pub fn fetch(&self, id: u64, writer: &mut dyn Write) -> Result<FetchReport, StorageError> {
        self.fetch_with(id, writer, &FetchOptions::default())
    }

    /// [`ObjectStore::fetch`] with explicit [`FetchOptions`].
    ///
    /// # Errors
    ///
    /// As [`ObjectStore::fetch`].
    pub fn fetch_with(
        &self,
        id: u64,
        writer: &mut dyn Write,
        options: &FetchOptions,
    ) -> Result<FetchReport, StorageError> {
        self.fetch_inner(id, writer, options, None)
    }

    /// [`ObjectStore::fetch_with`] decoding through a caller-owned
    /// [`DecodeWorkspace`]: units decode serially in the calling thread
    /// against the warm workspace instead of fanning out across scoped
    /// threads with per-thread scratch. This is the serve-worker path —
    /// request-level parallelism outside, exactly one resident workspace
    /// per worker inside. Byte-identical to [`ObjectStore::fetch_with`].
    ///
    /// # Errors
    ///
    /// As [`ObjectStore::fetch`].
    pub fn fetch_with_workspace(
        &self,
        id: u64,
        writer: &mut dyn Write,
        options: &FetchOptions,
        workspace: &mut DecodeWorkspace,
    ) -> Result<FetchReport, StorageError> {
        self.fetch_inner(id, writer, options, Some(workspace))
    }

    fn fetch_inner(
        &self,
        id: u64,
        writer: &mut dyn Write,
        options: &FetchOptions,
        mut workspace: Option<&mut DecodeWorkspace>,
    ) -> Result<FetchReport, StorageError> {
        let entry = self
            .manifest
            .object(id)
            .ok_or(StorageError::ObjectNotFound {
                id,
                tombstoned: false,
            })?;
        if entry.tombstone {
            return Err(StorageError::ObjectNotFound {
                id,
                tombstoned: true,
            });
        }
        let capacity = self.capsule_capacity();
        let stride = keystream_stride_blocks(capacity);
        let mut file = BufReader::new(File::open(self.dir.join(POOL_FILE))?);
        let mut report = FetchReport::default();
        for (k, seq) in entry.capsules.clone().enumerate() {
            let centry =
                self.manifest
                    .capsule(seq)
                    .ok_or_else(|| StorageError::ManifestCorrupt {
                        reason: format!("object {id} references missing capsule {seq}"),
                    })?;
            // Reads past the end of a torn pool surface as PoolTruncated
            // with a placeholder offset; stamp in where this record starts.
            let stamp_offset = |e: StorageError| match e {
                StorageError::PoolTruncated { offset: 0, reason } => StorageError::PoolTruncated {
                    offset: centry.offset,
                    reason,
                },
                other => other,
            };
            let cap = read_capsule_header_at(&mut file, &self.header, centry.offset)
                .map_err(stamp_offset)?;
            if cap.seq != seq || cap.object_id != id {
                return Err(StorageError::ManifestCorrupt {
                    reason: format!(
                        "capsule at offset {} is seq={} object={}, manifest expected seq={seq} object={id}",
                        centry.offset, cap.seq, cap.object_id
                    ),
                });
            }
            let (mut stored, reads, dropped) = decode_capsule_body(
                &mut file,
                &self.header,
                &self.base,
                &cap,
                options.via_recovery,
                workspace.as_deref_mut(),
            )
            .map_err(stamp_offset)?;
            if cap.flags & FLAG_ENCRYPTED != 0 {
                let Some(key) = &self.key else {
                    return Err(StorageError::InvalidParams(
                        "capsule is encrypted: open the store with its key".into(),
                    ));
                };
                let mut cipher = ChaCha20::new(key, &object_nonce(id));
                cipher.seek_block(k as u32 * stride);
                cipher.apply_keystream(&mut stored);
            }
            let plain = if cap.flags & FLAG_COMPRESSED != 0 {
                compress::decompress(&stored, cap.plain_len as usize).map_err(|reason| {
                    StorageError::Substrate(format!("capsule {seq} decompression failed: {reason}"))
                })?
            } else {
                if stored.len() as u64 != cap.plain_len {
                    return Err(StorageError::Substrate(format!(
                        "capsule {seq} stored {} bytes but claims {} plain bytes",
                        stored.len(),
                        cap.plain_len
                    )));
                }
                stored
            };
            writer.write_all(&plain)?;
            report.capsules += 1;
            report.units += cap.units as usize;
            report.reads += reads;
            report.prefilter_dropped += dropped;
            report.bytes += plain.len() as u64;
        }
        writer.flush()?;
        Ok(report)
    }

    /// Convenience: fetches object `id` into a fresh buffer.
    ///
    /// # Errors
    ///
    /// As [`ObjectStore::fetch`].
    pub fn get(&self, id: u64) -> Result<Vec<u8>, StorageError> {
        let mut out = Vec::new();
        self.fetch(id, &mut out)?;
        Ok(out)
    }

    /// Tombstones object `id`: appends a tombstone capsule (so a rebuilt
    /// manifest also sees the deletion) and commits. The payload capsules
    /// remain in the pool — DNA is append-only — but are unreachable
    /// through the API.
    ///
    /// # Errors
    ///
    /// [`StorageError::ObjectNotFound`] for unknown or already-deleted
    /// ids.
    pub fn delete(&mut self, id: u64) -> Result<(), StorageError> {
        let live = self.manifest.object(id).is_some_and(|o| !o.tombstone);
        if !live {
            return Err(StorageError::ObjectNotFound {
                id,
                tombstoned: self.manifest.object(id).is_some(),
            });
        }
        let seq = self.manifest.next_seq;
        let (left, right) =
            capsule_primers(self.header.pool_seed, seq, self.base.params().primer_len())?;
        let pool_path = self.dir.join(POOL_FILE);
        let mut file = BufWriter::new(OpenOptions::new().append(true).open(&pool_path)?);
        let header = CapsuleHeader {
            seq,
            object_id: id,
            flags: FLAG_TOMBSTONE,
            name: String::new(),
            units: 0,
            plain_len: 0,
            stored_len: 0,
            left,
            right,
        };
        header.write_to(&mut file)?;
        crate::capsule::write_strands(&mut file, &[], self.base.params().strand_bases())?;
        file.flush()?;
        drop(file);
        self.manifest.next_seq = seq + 1;
        self.manifest.tombstone(id);
        self.commit()
    }

    /// Persists the manifest: super-capsule appended to the pool, then
    /// the sidecar file via [`Manifest::commit_sidecar`] (write-to-temp,
    /// fsync, atomic rename, directory fsync).
    fn commit(&mut self) -> Result<(), StorageError> {
        let seq = self.manifest.next_seq;
        self.manifest.next_seq = seq + 1;
        let text = self.manifest.to_text();
        let (left, right) =
            capsule_primers(self.header.pool_seed, seq, self.base.params().primer_len())?;
        let pool_path = self.dir.join(POOL_FILE);
        let mut file = BufWriter::new(OpenOptions::new().append(true).open(&pool_path)?);
        self.append_capsule(
            &mut file,
            CapsuleHeader {
                seq,
                object_id: MANIFEST_OBJECT_ID,
                flags: FLAG_MANIFEST,
                name: String::new(),
                units: 0,
                plain_len: text.len() as u64,
                stored_len: text.len() as u64,
                left,
                right,
            },
            text.as_bytes(),
        )?;
        file.flush()?;
        drop(file);
        self.manifest.commit_sidecar(&self.dir, MANIFEST_FILE)
    }
}

struct AppendedCapsule {
    header: CapsuleHeader,
    bytes: u64,
}

impl AppendedCapsule {
    fn entry_at(&self, offset: u64) -> CapsuleEntry {
        CapsuleEntry {
            seq: self.header.seq,
            object_id: self.header.object_id,
            units: self.header.units,
            plain_len: self.header.plain_len,
            stored_len: self.header.stored_len,
            flags: self.header.flags,
            offset,
            left: self.header.left.strand().to_string(),
            right: self.header.right.strand().to_string(),
        }
    }
}

/// The ChaCha20 nonce for an object's capsule stream: the object id plus a
/// fixed tag. Each capsule then owns a disjoint keystream segment — see
/// [`keystream_stride_blocks`] — addressed with `ChaCha20::seek_block`, so
/// any single capsule decrypts without the keystream before it.
fn object_nonce(id: u64) -> [u8; 12] {
    let mut nonce = [0u8; 12];
    nonce[..8].copy_from_slice(&id.to_le_bytes());
    nonce[8..].copy_from_slice(b"caps");
    nonce
}

/// Keystream blocks reserved per capsule: the capsule payload capacity
/// rounded up to the 64-byte ChaCha20 block. Capsule `k` of an object
/// seeks to block `k * stride`.
fn keystream_stride_blocks(capsule_capacity: usize) -> u32 {
    capsule_capacity.div_ceil(64) as u32
}

/// Rebuilds the issued-primer working set from a manifest: every payload
/// capsule's recorded pair, in seq order. Tombstone and manifest capsules
/// never enter the manifest's capsule list, so the set is exactly the
/// primer-addressable pool.
fn issued_pairs_from_manifest(manifest: &Manifest) -> Result<Vec<(Primer, Primer)>, StorageError> {
    let mut pairs = Vec::with_capacity(manifest.capsules().len());
    for entry in manifest.capsules() {
        let parse = |text: &str, side: &str| -> Result<Primer, StorageError> {
            let strand: DnaString = text.parse().map_err(|e| StorageError::ManifestCorrupt {
                reason: format!("capsule {} has an unparsable {side} primer: {e}", entry.seq),
            })?;
            Ok(Primer::from_strand(strand))
        };
        pairs.push((parse(&entry.left, "left")?, parse(&entry.right, "right")?));
    }
    Ok(pairs)
}

fn plan_summary(pipeline: &Pipeline) -> String {
    let parities = pipeline.protection_plan().parities();
    let min = parities.iter().min().copied().unwrap_or(0);
    let max = parities.iter().max().copied().unwrap_or(0);
    format!("parity:{min}..{max}")
}

fn read_full(r: &mut dyn Read, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut at = 0usize;
    while at < buf.len() {
        let n = r.read(&mut buf[at..])?;
        if n == 0 {
            break;
        }
        at += n;
    }
    Ok(at)
}

fn read_capsule_header_at(
    file: &mut (impl Read + Seek),
    header: &PoolHeader,
    offset: u64,
) -> Result<CapsuleHeader, StorageError> {
    file.seek(SeekFrom::Start(offset))?;
    CapsuleHeader::read_from(file, usize::from(header.primer_len))
}

/// Reads + decodes one capsule's payload given its header has just been
/// read (the reader sits at the strand section). Returns the stored bytes
/// (still compressed/encrypted as flagged) plus read accounting.
fn decode_capsule_body(
    file: &mut (impl Read + Seek),
    header: &PoolHeader,
    base: &Pipeline,
    cap: &CapsuleHeader,
    via_recovery: bool,
    mut workspace: Option<&mut DecodeWorkspace>,
) -> Result<(Vec<u8>, usize, usize), StorageError> {
    let strand_bases = base.params().strand_bases();
    let units = crate::capsule::read_strands(file, cap.units, header.cols(), strand_bases)?;
    let pipeline = base
        .clone()
        .with_primers(cap.left.clone(), cap.right.clone())?;
    let primer_len = usize::from(header.primer_len);
    let mut reads = 0usize;
    let mut dropped = 0usize;
    // Primer prefilter: only strands carrying this capsule's primer pair
    // may enter the decoder (the in-silico analogue of PCR selection).
    let filtered: Vec<Vec<DnaString>> = units
        .into_iter()
        .map(|unit| {
            let before = unit.len();
            let kept: Vec<DnaString> = unit
                .into_iter()
                .filter(|s| strand_has_primers(s, &cap.left, &cap.right, primer_len))
                .collect();
            dropped += before - kept.len();
            reads += kept.len();
            kept
        })
        .collect();
    let mut stored = Vec::with_capacity(cap.stored_len as usize);
    if via_recovery {
        // Capsule-scoped recovery: each unit's reads go through the full
        // unlabeled-pool pipeline (cluster → orient → demux → decode).
        for unit in &filtered {
            let pool = AnonymousPool::from_reads(unit.iter().cloned());
            let (payload, _report) = match workspace.as_deref_mut() {
                Some(ws) => pipeline.decode_pool_with_workspace(&pool, ws)?,
                None => pipeline.decode_pool(&pool)?,
            };
            stored.extend_from_slice(&payload);
        }
    } else if let Some(ws) = workspace {
        // Serve-worker path: serial decode against the caller's warm
        // workspace (one resident workspace per worker, not per thread).
        let opts = pipeline.decode_options().clone();
        for unit in &filtered {
            let reads = ReadPool::from_strands(unit.iter().cloned());
            let (payload, _report) =
                pipeline.decode_unit_with_workspace(reads.clusters(), &opts, ws)?;
            stored.extend_from_slice(&payload);
        }
    } else {
        // Direct path: clean coverage-1 clusters per unit.
        let clusters: Vec<_> = filtered
            .iter()
            .map(|unit| {
                ReadPool::from_strands(unit.iter().cloned())
                    .clusters()
                    .to_vec()
            })
            .collect();
        for (payload, _report) in pipeline.decode_batch(&clusters)? {
            stored.extend_from_slice(&payload);
        }
    }
    stored.truncate(cap.stored_len as usize);
    if (stored.len() as u64) < cap.stored_len {
        return Err(StorageError::Substrate(format!(
            "capsule {} decoded {} bytes, expected {}",
            cap.seq,
            stored.len(),
            cap.stored_len
        )));
    }
    Ok((stored, reads, dropped))
}

/// Reads + decodes a whole capsule record at `offset` (header included).
fn decode_capsule_at(
    file: &mut (impl Read + Seek),
    header: &PoolHeader,
    base: &Pipeline,
    offset: u64,
    cap: &CapsuleHeader,
    via_recovery: bool,
) -> Result<(Vec<u8>, usize, usize), StorageError> {
    let reread = read_capsule_header_at(file, header, offset)?;
    if &reread != cap {
        return Err(StorageError::ManifestCorrupt {
            reason: "capsule header changed between scan and decode".into(),
        });
    }
    decode_capsule_body(file, header, base, cap, via_recovery, None)
}

fn strand_has_primers(s: &DnaString, left: &Primer, right: &Primer, primer_len: usize) -> bool {
    if s.len() < 2 * primer_len {
        return false;
    }
    s.as_slice()[..primer_len] == *left.strand().as_slice()
        && s.as_slice()[s.len() - primer_len..] == *right.strand().as_slice()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capsule::strand_section_len;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dna-object-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn payload(bytes: usize) -> Vec<u8> {
        (0..bytes).map(|i| (i * 31 % 251) as u8).collect()
    }

    #[test]
    fn put_get_round_trip_multi_capsule() {
        let dir = tmp_dir("roundtrip");
        let mut store = ObjectStore::create(&dir, StoreConfig::tiny().unwrap()).unwrap();
        // 90 B per capsule at tiny scale: 250 B spans 3 capsules.
        let data = payload(250);
        let id = store.put_bytes("alpha", &data).unwrap();
        assert_eq!(id, 1);
        let entry = store.manifest().object(id).unwrap();
        assert_eq!(entry.capsules.len(), 3);
        assert_eq!(store.get(id).unwrap(), data);
        // Reopen from disk: sidecar manifest path.
        drop(store);
        let store = ObjectStore::open(&dir).unwrap();
        assert_eq!(store.get(id).unwrap(), data);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fetch_reports_touch_only_the_object() {
        let dir = tmp_dir("report");
        let mut store = ObjectStore::create(&dir, StoreConfig::tiny().unwrap()).unwrap();
        let small = payload(40);
        let big = payload(500);
        let small_id = store.put_bytes("small", &small).unwrap();
        let big_id = store.put_bytes("big", &big).unwrap();
        let mut sink = Vec::new();
        let small_report = store.fetch(small_id, &mut sink).unwrap();
        assert_eq!(small_report.capsules, 1);
        sink.clear();
        let big_report = store.fetch(big_id, &mut sink).unwrap();
        assert_eq!(big_report.capsules, 6, "500 B / 90 B per capsule");
        assert!(small_report.reads < big_report.reads);
        assert_eq!(small_report.prefilter_dropped, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Pool seed whose raw (attempt-0) primer derivation collides across
    /// capsules: at 12-base primers, seqs 1 and 35 draw pairs inside the
    /// prefilter window of 3. Found with `scan_for_colliding_seed` below;
    /// re-pinned after junction screening changed primer generation
    /// (previously seed 0 / seqs 29 & 38).
    const COLLIDING_POOL_SEED: u64 = 10;
    const COLLIDING_SEQS: (u32, u32) = (1, 35);

    #[test]
    #[ignore = "seed scanner, run by hand to re-pin COLLIDING_POOL_SEED"]
    fn scan_for_colliding_seed() {
        let len = 12usize;
        let min_d = cross_primer_min_distance(len);
        for seed in 0u64..500 {
            let pairs: Vec<_> = (1..=40u32)
                .map(|seq| capsule_primers(seed, seq, len).unwrap())
                .collect();
            for i in 0..pairs.len() {
                for j in i + 1..pairs.len() {
                    if primer_pairs_collide(&pairs[i], &pairs[j], min_d) {
                        println!("seed {seed}: seqs {} and {} collide", i + 1, j + 1);
                        return;
                    }
                }
            }
        }
        panic!("no colliding seed in range");
    }

    #[test]
    fn put_redraws_on_cross_capsule_primer_collision() {
        let len = 12usize;
        let min_d = cross_primer_min_distance(len);
        // The raw derivation really does collide at this seed today —
        // this is the bug the store's redraw loop exists to absorb.
        let a = capsule_primers(COLLIDING_POOL_SEED, COLLIDING_SEQS.0, len).unwrap();
        let b = capsule_primers(COLLIDING_POOL_SEED, COLLIDING_SEQS.1, len).unwrap();
        assert!(
            primer_pairs_collide(&a, &b, min_d),
            "seed no longer forces a collision; re-pin COLLIDING_POOL_SEED"
        );

        // One object spanning both colliding seqs as payload capsules
        // (create commits seq 0, so payload runs 1..=38 at 90 B each).
        let dir = tmp_dir("primer-collision");
        let config = StoreConfig::tiny()
            .unwrap()
            .with_pool_seed(COLLIDING_POOL_SEED);
        let mut store = ObjectStore::create(&dir, config).unwrap();
        let data = payload(38 * 90);
        let id = store.put_bytes("wide", &data).unwrap();
        assert_eq!(store.manifest().object(id).unwrap().capsules.clone(), 1..39);

        // Every issued pair (as persisted in the manifest — what fetch
        // and the prefilter actually use) clears every other's window.
        // On the pre-redraw store this fails at (29, 38).
        let issued = issued_pairs_from_manifest(store.manifest()).unwrap();
        for i in 0..issued.len() {
            for j in i + 1..issued.len() {
                assert!(
                    !primer_pairs_collide(&issued[i], &issued[j], min_d),
                    "issued pairs for capsules {} and {} collide",
                    i + 1,
                    j + 1
                );
            }
        }
        // The collision was dodged by redrawing, not by luck: capsule
        // 38's recorded pair differs from its raw attempt-0 draw.
        let redrawn = &issued[(COLLIDING_SEQS.1 - 1) as usize];
        assert_ne!(
            redrawn, &b,
            "capsule {} kept its colliding draw",
            COLLIDING_SEQS.1
        );

        // The redraw is invisible to readers (headers carry the pair).
        assert_eq!(store.get(id).unwrap(), data);
        drop(store);
        let reopened = ObjectStore::open(&dir).unwrap();
        assert_eq!(reopened.get(id).unwrap(), data);
        // Reopen rebuilds the working set from the manifest, so later
        // puts keep honoring pairs issued before the restart.
        assert_eq!(reopened.issued_primer_pairs().len(), 38);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn fetch_with_workspace_matches_plain_fetch() {
        let dir = tmp_dir("ws-fetch");
        let mut store = ObjectStore::create(&dir, StoreConfig::tiny().unwrap()).unwrap();
        let data = payload(250);
        let id = store.put_bytes("alpha", &data).unwrap();
        let mut ws = DecodeWorkspace::new();
        for options in [FetchOptions::default(), FetchOptions { via_recovery: true }] {
            let mut plain = Vec::new();
            let plain_report = store.fetch_with(id, &mut plain, &options).unwrap();
            let mut pooled = Vec::new();
            let pooled_report = store
                .fetch_with_workspace(id, &mut pooled, &options, &mut ws)
                .unwrap();
            assert_eq!(plain, data);
            assert_eq!(pooled, plain, "via_recovery={}", options.via_recovery);
            assert_eq!(pooled_report, plain_report);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_fetch_matches_direct_fetch() {
        let dir = tmp_dir("viarecovery");
        let mut store = ObjectStore::create(&dir, StoreConfig::tiny().unwrap()).unwrap();
        let data = payload(200);
        let id = store.put_bytes("alpha", &data).unwrap();
        let mut direct = Vec::new();
        store.fetch(id, &mut direct).unwrap();
        let mut recovered = Vec::new();
        store
            .fetch_with(id, &mut recovered, &FetchOptions { via_recovery: true })
            .unwrap();
        assert_eq!(direct, data);
        assert_eq!(recovered, data);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn encrypted_store_requires_key() {
        let dir = tmp_dir("crypt");
        let key = [7u8; 32];
        let mut store =
            ObjectStore::create(&dir, StoreConfig::tiny().unwrap().with_key(key)).unwrap();
        let data = payload(120);
        let id = store.put_bytes("secret", &data).unwrap();
        drop(store);
        // Key-less open can browse but not decrypt.
        let blind = ObjectStore::open(&dir).unwrap();
        assert_eq!(blind.list().len(), 1);
        assert!(matches!(blind.get(id), Err(StorageError::InvalidParams(_))));
        // Wrong key is rejected at open.
        assert!(ObjectStore::open_with_key(&dir, [8u8; 32]).is_err());
        let store = ObjectStore::open_with_key(&dir, key).unwrap();
        assert_eq!(store.get(id).unwrap(), data);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn delete_tombstones_and_fetch_fails_typed() {
        let dir = tmp_dir("tombstone");
        let mut store = ObjectStore::create(&dir, StoreConfig::tiny().unwrap()).unwrap();
        let id = store.put_bytes("doomed", &payload(50)).unwrap();
        store.delete(id).unwrap();
        assert!(matches!(
            store.get(id),
            Err(StorageError::ObjectNotFound {
                tombstoned: true,
                ..
            })
        ));
        assert!(matches!(
            store.delete(id),
            Err(StorageError::ObjectNotFound { .. })
        ));
        assert!(store.object_id("doomed").is_none());
        // Unknown ids are typed too.
        assert!(matches!(
            store.get(99),
            Err(StorageError::ObjectNotFound {
                tombstoned: false,
                ..
            })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_recovers_from_super_capsule() {
        let dir = tmp_dir("supercapsule");
        let mut store = ObjectStore::create(&dir, StoreConfig::tiny().unwrap()).unwrap();
        let data = payload(150);
        let id = store.put_bytes("alpha", &data).unwrap();
        let sidecar_manifest = store.manifest().clone();
        drop(store);
        std::fs::remove_file(dir.join(MANIFEST_FILE)).unwrap();
        let store = ObjectStore::open(&dir).unwrap();
        assert_eq!(*store.manifest(), sidecar_manifest);
        assert_eq!(store.get(id).unwrap(), data);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_manifest_is_typed_and_rebuildable() {
        let dir = tmp_dir("rebuild");
        let mut store = ObjectStore::create(&dir, StoreConfig::tiny().unwrap()).unwrap();
        let a = store.put_bytes("alpha", &payload(150)).unwrap();
        let b = store.put_bytes("beta", &payload(40)).unwrap();
        store.delete(b).unwrap();
        let pool_len_with_manifest = std::fs::metadata(dir.join(POOL_FILE)).unwrap().len();
        drop(store);
        // Truncate the pool right after the last data/tombstone capsule,
        // cutting off every super-capsule, and drop the sidecar: neither
        // manifest source remains.
        std::fs::remove_file(dir.join(MANIFEST_FILE)).unwrap();
        truncate_trailing_super_capsules(&dir);
        assert!(pool_len_with_manifest > std::fs::metadata(dir.join(POOL_FILE)).unwrap().len());
        assert!(matches!(
            ObjectStore::open(&dir),
            Err(StorageError::ManifestMissing)
        ));
        let (store, report) = ObjectStore::rebuild_manifest(&dir).unwrap();
        assert_eq!(report.objects, 1);
        assert_eq!(report.tombstones, 1);
        assert_eq!(store.get(a).unwrap(), payload(150));
        assert!(matches!(
            store.get(b),
            Err(StorageError::ObjectNotFound {
                tombstoned: true,
                ..
            })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Rewrites the pool keeping only non-manifest capsules.
    fn truncate_trailing_super_capsules(dir: &Path) {
        let path = dir.join(POOL_FILE);
        let mut file = BufReader::new(File::open(&path).unwrap());
        let header = PoolHeader::read_from(&mut file).unwrap();
        let params = header.params().unwrap();
        let strand_bases = params.strand_bases();
        let records = scan_capsules(&mut file, &header, strand_bases).unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        let keep_end = records
            .iter()
            .filter(|(_, c)| c.flags & FLAG_MANIFEST == 0)
            .map(|(off, _c)| {
                // offset + header + strands
                let mut f = BufReader::new(File::open(&path).unwrap());
                f.seek(SeekFrom::Start(*off)).unwrap();
                let h = CapsuleHeader::read_from(&mut f, usize::from(header.primer_len)).unwrap();
                f.stream_position().unwrap()
                    + strand_section_len(h.units, header.cols(), strand_bases)
            })
            .max()
            .unwrap_or(PoolHeader::LEN);
        raw.truncate(keep_end as usize);
        // But interior super-capsules (from intermediate commits) remain;
        // rewrite the file without any manifest capsule at all.
        let mut out: Vec<u8> = raw[..PoolHeader::LEN as usize].to_vec();
        let mut f = BufReader::new(std::io::Cursor::new(raw.clone()));
        f.seek(SeekFrom::Start(PoolHeader::LEN)).unwrap();
        loop {
            let at = f.stream_position().unwrap();
            if at >= raw.len() as u64 {
                break;
            }
            let h = match CapsuleHeader::read_from(&mut f, usize::from(header.primer_len)) {
                Ok(h) => h,
                Err(_) => break,
            };
            let body = strand_section_len(h.units, header.cols(), strand_bases);
            let end = f.stream_position().unwrap() + body;
            if h.flags & FLAG_MANIFEST == 0 {
                out.extend_from_slice(&raw[at as usize..end as usize]);
            }
            f.seek(SeekFrom::Start(end)).unwrap();
        }
        std::fs::write(&path, out).unwrap();
    }

    #[test]
    fn zero_byte_objects_round_trip() {
        let dir = tmp_dir("empty");
        let mut store = ObjectStore::create(&dir, StoreConfig::tiny().unwrap()).unwrap();
        let id = store.put_bytes("empty", &[]).unwrap();
        assert_eq!(store.get(id).unwrap(), Vec::<u8>::new());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_names_are_rejected() {
        let dir = tmp_dir("names");
        let mut store = ObjectStore::create(&dir, StoreConfig::tiny().unwrap()).unwrap();
        assert!(store.put_bytes("", &[1]).is_err());
        assert!(store.put_bytes("has space", &[1]).is_err());
        store.put_bytes("dup", &[1]).unwrap();
        assert!(store.put_bytes("dup", &[2]).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
