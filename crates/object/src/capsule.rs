//! The on-disk pool format: a header describing the codec geometry
//! followed by self-describing, CRC-guarded **capsule** records.
//!
//! A capsule is the unit of survival and of random access: a fixed span of
//! encoding units that shares one PCR primer pair (its address), one
//! optional compress→encrypt layer, and one CRC'd trailer. Every record is
//! fully self-describing — object id, flags, name, unit count, payload
//! lengths, and the primer pair are all in the header — so a pool whose
//! manifest is lost can be scanned capsule-by-capsule and the manifest
//! rebuilt (`ObjectStore::rebuild_manifest`).
//!
//! Strand bases are packed four to a byte (2 bits per base, A=00 C=01
//! G=10 T=11), unit-major then column-major, at fixed record sizes derived
//! from the pool geometry; unit boundaries are therefore structural and
//! need no in-band markers.

use crate::checksum::{crc32, crc64};
use dna_storage::{CodecParams, Layout, StorageError};
use dna_strand::{Base, DnaString, Primer, PrimerLibrary, TranscoderSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Seek, SeekFrom, Write};

/// Pool file magic.
pub const POOL_MAGIC: &[u8; 8] = b"DNAPOOL1";
/// Capsule record magic.
pub const CAPSULE_MAGIC: &[u8; 4] = b"CAP1";
/// Capsule trailer magic.
pub const TRAILER_MAGIC: &[u8; 4] = b"1PAC";

/// Capsule payload is ChaCha20-encrypted.
pub const FLAG_ENCRYPTED: u16 = 1 << 0;
/// Capsule payload is zero-RLE compressed.
pub const FLAG_COMPRESSED: u16 = 1 << 1;
/// Capsule holds a serialized manifest (the reserved super-capsule).
pub const FLAG_MANIFEST: u16 = 1 << 2;
/// Capsule is a tombstone marking its object id deleted.
pub const FLAG_TOMBSTONE: u16 = 1 << 3;

/// The object id reserved for manifest super-capsules.
pub const MANIFEST_OBJECT_ID: u64 = 0;

/// Longest accepted object name, bounded by the capsule header's length
/// byte.
pub const MAX_NAME_LEN: usize = 255;

fn corrupt(reason: impl Into<String>) -> StorageError {
    StorageError::ManifestCorrupt {
        reason: reason.into(),
    }
}

/// Which built-in layout engine the pool was written with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutKind {
    /// Row codewords, column-major data.
    Baseline,
    /// Diagonal codeword interleaving (no excluded rows).
    Gini,
    /// Priority zig-zag data mapping.
    DnaMapper,
}

impl LayoutKind {
    fn to_u8(self) -> u8 {
        match self {
            LayoutKind::Baseline => 0,
            LayoutKind::Gini => 1,
            LayoutKind::DnaMapper => 2,
        }
    }

    fn from_u8(v: u8) -> Result<LayoutKind, StorageError> {
        match v {
            0 => Ok(LayoutKind::Baseline),
            1 => Ok(LayoutKind::Gini),
            2 => Ok(LayoutKind::DnaMapper),
            other => Err(corrupt(format!("unknown layout kind {other}"))),
        }
    }

    /// The [`Layout`] this kind denotes.
    pub fn to_layout(self) -> Layout {
        match self {
            LayoutKind::Baseline => Layout::Baseline,
            LayoutKind::Gini => Layout::Gini {
                excluded_rows: vec![],
            },
            LayoutKind::DnaMapper => Layout::DnaMapper,
        }
    }

    /// The kind of a built-in [`Layout`]; Gini layouts with excluded rows
    /// are rejected (the pool header cannot carry the row list).
    pub fn from_layout(layout: &Layout) -> Result<LayoutKind, StorageError> {
        match layout {
            Layout::Baseline => Ok(LayoutKind::Baseline),
            Layout::Gini { excluded_rows } if excluded_rows.is_empty() => Ok(LayoutKind::Gini),
            Layout::Gini { .. } => Err(StorageError::InvalidParams(
                "object pools do not support Gini excluded rows".into(),
            )),
            Layout::DnaMapper => Ok(LayoutKind::DnaMapper),
        }
    }
}

/// The pool file header: everything needed to rebuild the codec and walk
/// the capsule records.
///
/// Version 1 pools predate the pluggable transcoder and always use the
/// direct 2-bit layout (the byte at offset 19 was a zero pad). Version 2
/// records the [`TranscoderSpec`] id in that byte; writers emit version 1
/// for direct pools so their files stay byte-identical to old tooling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolHeader {
    /// Format version (1 = direct-only, 2 = carries a transcoder id).
    pub version: u16,
    /// Symbol width of the GF field (4, 8, or 16 bits).
    pub field_width: u8,
    /// Layout engine.
    pub layout: LayoutKind,
    /// Matrix rows.
    pub rows: u16,
    /// Data columns per unit.
    pub data_cols: u16,
    /// Parity columns per unit.
    pub parity_cols: u16,
    /// Index width in bits.
    pub index_bits: u8,
    /// Byte→base transcoder the pool's strands were written with.
    pub transcoder: TranscoderSpec,
    /// Primer length in bases (> 0: primers are the address space).
    pub primer_len: u16,
    /// Data units per capsule (super-capsules may exceed this).
    pub units_per_capsule: u32,
    /// Seed that derives every capsule's primer pair.
    pub pool_seed: u64,
    /// FNV-1a of the encryption key, 0 when the pool is plaintext.
    pub key_fingerprint: u64,
}

impl PoolHeader {
    /// Serializes the header (magic through CRC).
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<(), StorageError> {
        let mut buf = Vec::with_capacity(46);
        buf.extend_from_slice(POOL_MAGIC);
        buf.extend_from_slice(&self.version.to_le_bytes());
        buf.push(self.field_width);
        buf.push(self.layout.to_u8());
        buf.extend_from_slice(&self.rows.to_le_bytes());
        buf.extend_from_slice(&self.data_cols.to_le_bytes());
        buf.extend_from_slice(&self.parity_cols.to_le_bytes());
        buf.push(self.index_bits);
        buf.push(self.transcoder.id());
        buf.extend_from_slice(&self.primer_len.to_le_bytes());
        buf.extend_from_slice(&self.units_per_capsule.to_le_bytes());
        buf.extend_from_slice(&self.pool_seed.to_le_bytes());
        buf.extend_from_slice(&self.key_fingerprint.to_le_bytes());
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        w.write_all(&buf)?;
        Ok(())
    }

    /// Reads and validates a pool header.
    pub fn read_from<R: Read>(r: &mut R) -> Result<PoolHeader, StorageError> {
        let mut buf = [0u8; 46];
        r.read_exact(&mut buf)
            .map_err(|e| corrupt(format!("pool header unreadable: {e}")))?;
        if &buf[..8] != POOL_MAGIC {
            return Err(corrupt("bad pool magic"));
        }
        let stored_crc = u32::from_le_bytes(buf[42..46].try_into().unwrap());
        if crc32(&buf[..42]) != stored_crc {
            return Err(corrupt("pool header CRC mismatch"));
        }
        let version = u16::from_le_bytes(buf[8..10].try_into().unwrap());
        if version != 1 && version != 2 {
            return Err(corrupt(format!("unsupported pool version {version}")));
        }
        // Version 1 pools wrote a zero pad at offset 19 and always use the
        // direct layout; version 2 records the transcoder id there.
        let transcoder = if version == 1 {
            if buf[19] != 0 {
                return Err(corrupt(format!(
                    "version 1 pool with nonzero pad byte {}",
                    buf[19]
                )));
            }
            TranscoderSpec::Direct
        } else {
            TranscoderSpec::from_id(buf[19])
                .ok_or_else(|| corrupt(format!("unknown transcoder id {}", buf[19])))?
        };
        Ok(PoolHeader {
            version,
            field_width: buf[10],
            layout: LayoutKind::from_u8(buf[11])?,
            rows: u16::from_le_bytes(buf[12..14].try_into().unwrap()),
            data_cols: u16::from_le_bytes(buf[14..16].try_into().unwrap()),
            parity_cols: u16::from_le_bytes(buf[16..18].try_into().unwrap()),
            index_bits: buf[18],
            transcoder,
            primer_len: u16::from_le_bytes(buf[20..22].try_into().unwrap()),
            units_per_capsule: u32::from_le_bytes(buf[22..26].try_into().unwrap()),
            pool_seed: u64::from_le_bytes(buf[26..34].try_into().unwrap()),
            key_fingerprint: u64::from_le_bytes(buf[34..42].try_into().unwrap()),
        })
    }

    /// Serialized header length in bytes.
    pub const LEN: u64 = 46;

    /// Reconstructs the codec geometry this pool was written with.
    pub fn params(&self) -> Result<CodecParams, StorageError> {
        let field = match self.field_width {
            4 => dna_gf::Field::gf16(),
            8 => dna_gf::Field::gf256(),
            16 => dna_gf::Field::gf65536(),
            w => {
                return Err(corrupt(format!("unsupported field width {w}")));
            }
        };
        Ok(CodecParams::new(
            field,
            usize::from(self.rows),
            usize::from(self.data_cols),
            usize::from(self.parity_cols),
            self.index_bits,
        )?
        .with_primer_len(usize::from(self.primer_len))
        .with_transcoder(self.transcoder))
    }

    /// Total columns (molecules) per unit.
    pub fn cols(&self) -> usize {
        usize::from(self.data_cols) + usize::from(self.parity_cols)
    }
}

/// One capsule record header, fully self-describing for manifest rebuild.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapsuleHeader {
    /// Pool-wide capsule sequence number (primer derivation input).
    pub seq: u32,
    /// Owning object (0 = manifest super-capsule).
    pub object_id: u64,
    /// `FLAG_*` bits.
    pub flags: u16,
    /// Object name (carried on every data capsule so rebuild recovers it).
    pub name: String,
    /// Encoding units in this capsule.
    pub units: u32,
    /// Payload bytes before compression.
    pub plain_len: u64,
    /// Bytes actually encoded (after compression, before unit padding).
    pub stored_len: u64,
    /// Left (5') primer — the capsule's forward PCR address.
    pub left: Primer,
    /// Right (3') primer.
    pub right: Primer,
}

impl CapsuleHeader {
    fn serialize(&self) -> Result<Vec<u8>, StorageError> {
        if self.name.len() > MAX_NAME_LEN {
            return Err(StorageError::InvalidParams(format!(
                "object name longer than {MAX_NAME_LEN} bytes"
            )));
        }
        let mut buf = Vec::with_capacity(64 + self.name.len());
        buf.extend_from_slice(CAPSULE_MAGIC);
        buf.extend_from_slice(&1u16.to_le_bytes()); // record version
        buf.extend_from_slice(&self.seq.to_le_bytes());
        buf.extend_from_slice(&self.object_id.to_le_bytes());
        buf.extend_from_slice(&self.flags.to_le_bytes());
        buf.push(self.name.len() as u8);
        buf.extend_from_slice(self.name.as_bytes());
        buf.extend_from_slice(&self.units.to_le_bytes());
        buf.extend_from_slice(&self.plain_len.to_le_bytes());
        buf.extend_from_slice(&self.stored_len.to_le_bytes());
        buf.extend_from_slice(&pack_bases(self.left.strand().as_slice()));
        buf.extend_from_slice(&pack_bases(self.right.strand().as_slice()));
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        Ok(buf)
    }

    /// Writes the header, returning the bytes written.
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<u64, StorageError> {
        let buf = self.serialize()?;
        w.write_all(&buf)?;
        Ok(buf.len() as u64)
    }

    /// Reads and validates a capsule header. `primer_len` comes from the
    /// pool header (primers are stored packed at that length).
    pub fn read_from<R: Read>(r: &mut R, primer_len: usize) -> Result<CapsuleHeader, StorageError> {
        // Fixed prefix through name_len.
        let mut head = [0u8; 21];
        r.read_exact(&mut head)
            .map_err(|e| eof_is_truncation(e, "capsule header fixed prefix"))?;
        if &head[..4] != CAPSULE_MAGIC {
            return Err(corrupt("bad capsule magic"));
        }
        let record_version = u16::from_le_bytes(head[4..6].try_into().unwrap());
        if record_version != 1 {
            return Err(corrupt(format!(
                "unsupported capsule record version {record_version}"
            )));
        }
        let name_len = usize::from(head[20]);
        let packed_primer = primer_len.div_ceil(4);
        let mut rest = vec![0u8; name_len + 4 + 8 + 8 + 2 * packed_primer + 4];
        r.read_exact(&mut rest)
            .map_err(|e| eof_is_truncation(e, "capsule header tail"))?;
        let mut all = head.to_vec();
        all.extend_from_slice(&rest);
        let crc_at = all.len() - 4;
        let stored_crc = u32::from_le_bytes(all[crc_at..].try_into().unwrap());
        if crc32(&all[..crc_at]) != stored_crc {
            return Err(corrupt("capsule header CRC mismatch"));
        }
        let name = String::from_utf8(rest[..name_len].to_vec())
            .map_err(|_| corrupt("capsule name is not UTF-8"))?;
        let mut at = name_len;
        let units = u32::from_le_bytes(rest[at..at + 4].try_into().unwrap());
        at += 4;
        let plain_len = u64::from_le_bytes(rest[at..at + 8].try_into().unwrap());
        at += 8;
        let stored_len = u64::from_le_bytes(rest[at..at + 8].try_into().unwrap());
        at += 8;
        let left = Primer::from_strand(unpack_bases(&rest[at..at + packed_primer], primer_len));
        at += packed_primer;
        let right = Primer::from_strand(unpack_bases(&rest[at..at + packed_primer], primer_len));
        Ok(CapsuleHeader {
            seq: u32::from_le_bytes(head[6..10].try_into().unwrap()),
            object_id: u64::from_le_bytes(head[10..18].try_into().unwrap()),
            flags: u16::from_le_bytes(head[18..20].try_into().unwrap()),
            name,
            units,
            plain_len,
            stored_len,
            left,
            right,
        })
    }
}

/// Packed length of one strand of `bases` bases.
pub fn packed_strand_len(bases: usize) -> usize {
    dna_strand::bits::packed_base_len(bases)
}

/// Packs bases four to a byte, low bits first, via the dispatched
/// word-at-a-time kernel in [`dna_strand::bits`].
pub fn pack_bases(bases: &[Base]) -> Vec<u8> {
    dna_strand::bits::pack_bases(bases)
}

/// Inverse of [`pack_bases`] for a known base count.
pub fn unpack_bases(packed: &[u8], bases: usize) -> DnaString {
    DnaString::from_bases(dna_strand::bits::unpack_bases(packed, bases))
}

/// Byte length of a capsule's strand+trailer section.
pub fn strand_section_len(units: u32, cols: usize, strand_bases: usize) -> u64 {
    u64::from(units) * cols as u64 * packed_strand_len(strand_bases) as u64 + 8 + 4
}

/// Writes the strand section (packed strands, CRC-64 trailer, trailer
/// magic) for a capsule whose strands are given unit-major, column-major.
/// Every strand must be exactly `strand_bases` long.
pub fn write_strands<W: Write>(
    w: &mut W,
    units: &[Vec<DnaString>],
    strand_bases: usize,
) -> Result<u64, StorageError> {
    let mut crc_state = Vec::new();
    let mut written = 0u64;
    for unit in units {
        for strand in unit {
            if strand.len() != strand_bases {
                return Err(StorageError::InvalidParams(format!(
                    "strand length {} != expected {strand_bases}",
                    strand.len()
                )));
            }
            let packed = pack_bases(strand.as_slice());
            crc_state.extend_from_slice(&packed);
            w.write_all(&packed)?;
            written += packed.len() as u64;
        }
    }
    let crc = crc64(&crc_state);
    w.write_all(&crc.to_le_bytes())?;
    w.write_all(TRAILER_MAGIC)?;
    Ok(written + 12)
}

/// Reads a capsule's strand section back as per-unit strand lists,
/// verifying the CRC-64 trailer.
pub fn read_strands<R: Read>(
    r: &mut R,
    units: u32,
    cols: usize,
    strand_bases: usize,
) -> Result<Vec<Vec<DnaString>>, StorageError> {
    let packed_len = packed_strand_len(strand_bases);
    let mut raw = vec![0u8; units as usize * cols * packed_len];
    r.read_exact(&mut raw)
        .map_err(|e| eof_is_truncation(e, "capsule strand section"))?;
    let mut trailer = [0u8; 12];
    r.read_exact(&mut trailer)
        .map_err(|e| eof_is_truncation(e, "capsule CRC trailer"))?;
    let stored_crc = u64::from_le_bytes(trailer[..8].try_into().unwrap());
    if &trailer[8..] != TRAILER_MAGIC {
        return Err(corrupt("bad capsule trailer magic"));
    }
    if crc64(&raw) != stored_crc {
        return Err(StorageError::Substrate(
            "capsule strand CRC mismatch (torn or corrupted record)".into(),
        ));
    }
    let mut out = Vec::with_capacity(units as usize);
    let mut at = 0usize;
    for _ in 0..units {
        let mut unit = Vec::with_capacity(cols);
        for _ in 0..cols {
            unit.push(unpack_bases(&raw[at..at + packed_len], strand_bases));
            at += packed_len;
        }
        out.push(unit);
    }
    Ok(out)
}

/// Maps an end-of-file mid-read to [`StorageError::PoolTruncated`] (a
/// torn append or external chop — the record simply is not all there)
/// and every other I/O failure to [`StorageError::ManifestCorrupt`].
/// The truncation offset is filled in by callers that know where the
/// record started ([`scan_capsules`], the store's fetch path).
fn eof_is_truncation(e: std::io::Error, what: &str) -> StorageError {
    if e.kind() == std::io::ErrorKind::UnexpectedEof {
        StorageError::PoolTruncated {
            offset: 0,
            reason: format!("{what} ends at end of file"),
        }
    } else {
        corrupt(format!("{what} unreadable: {e}"))
    }
}

/// Walks the whole pool file, returning `(offset, header)` for every
/// capsule record without reading strand bytes (headers only; strand
/// sections are seeked over). This is the scan that powers manifest
/// recovery and rebuild.
///
/// # Errors
///
/// [`StorageError::PoolTruncated`] (carrying the torn record's byte
/// offset) when the file ends mid-record;
/// [`StorageError::ManifestCorrupt`] when a header is structurally
/// invalid (bad magic, CRC mismatch, unsupported version).
pub fn scan_capsules<R: Read + Seek>(
    r: &mut R,
    header: &PoolHeader,
    strand_bases: usize,
) -> Result<Vec<(u64, CapsuleHeader)>, StorageError> {
    let end = r.seek(SeekFrom::End(0))?;
    let mut at = r.seek(SeekFrom::Start(PoolHeader::LEN))?;
    let mut out = Vec::new();
    while at < end {
        let cap = match CapsuleHeader::read_from(r, usize::from(header.primer_len)) {
            Ok(cap) => cap,
            Err(StorageError::PoolTruncated { reason, .. }) => {
                return Err(StorageError::PoolTruncated { offset: at, reason });
            }
            Err(e) => return Err(e),
        };
        let body = strand_section_len(cap.units, header.cols(), strand_bases);
        let next = r.seek(SeekFrom::Current(body as i64))?;
        if next > end {
            return Err(StorageError::PoolTruncated {
                offset: at,
                reason: format!(
                    "capsule seq {} needs {body} strand-section bytes but the file ends first",
                    cap.seq
                ),
            });
        }
        out.push((at, cap));
        at = next;
    }
    Ok(out)
}

/// Derives capsule `seq`'s primer pair from the pool seed: a fresh seeded
/// search satisfying [`dna_strand::constraints::ConstraintSet::primer_default`] with
/// pairwise distance within the pair. Deterministic given
/// `(pool_seed, seq, len)`; this raw draw carries **no** pairwise-distance
/// guarantee *across* capsules (a global library search is quadratic in
/// pool size). [`ObjectStore::put`](crate::ObjectStore::put) therefore
/// tracks every issued pair and redraws via
/// [`capsule_primers_attempt`] on a cross-capsule collision.
pub fn capsule_primers(
    pool_seed: u64,
    seq: u32,
    len: usize,
) -> Result<(Primer, Primer), StorageError> {
    capsule_primers_attempt(pool_seed, seq, len, 0)
}

/// [`capsule_primers`] with a redraw counter: attempt 0 reproduces the
/// original derivation bit-for-bit (so existing pools re-derive the same
/// pairs), while attempt `k > 0` salts the seed for the store's
/// collision-avoidance redraw loop. The chosen pair is persisted in the
/// capsule header and manifest, so readers never re-run this search.
pub fn capsule_primers_attempt(
    pool_seed: u64,
    seq: u32,
    len: usize,
    attempt: u32,
) -> Result<(Primer, Primer), StorageError> {
    let salt = u64::from(attempt).wrapping_mul(0xD1B5_4A32_D192_ED03);
    let mut rng = StdRng::seed_from_u64(splitmix64(
        pool_seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(seq) + 1) ^ salt,
    ));
    let min_distance = (len / 3).max(1);
    let lib = PrimerLibrary::generate(2, len, min_distance, &mut rng)?;
    Ok((lib.primers()[0].clone(), lib.primers()[1].clone()))
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> PoolHeader {
        PoolHeader {
            version: 1,
            field_width: 4,
            layout: LayoutKind::Gini,
            rows: 6,
            data_cols: 10,
            parity_cols: 5,
            index_bits: 4,
            transcoder: TranscoderSpec::Direct,
            primer_len: 12,
            units_per_capsule: 3,
            pool_seed: 99,
            key_fingerprint: 0,
        }
    }

    #[test]
    fn pool_header_round_trips() {
        let h = sample_header();
        let mut buf = Vec::new();
        h.write_to(&mut buf).unwrap();
        assert_eq!(buf.len() as u64, PoolHeader::LEN);
        let back = PoolHeader::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back, h);
        let params = back.params().unwrap();
        assert_eq!(params.rows(), 6);
        assert_eq!(params.primer_len(), 12);
        assert_eq!(params.transcoder(), TranscoderSpec::Direct);
    }

    #[test]
    fn v2_header_round_trips_transcoder() {
        let mut h = sample_header();
        h.version = 2;
        h.transcoder = TranscoderSpec::Trellis;
        let mut buf = Vec::new();
        h.write_to(&mut buf).unwrap();
        assert_eq!(buf[19], TranscoderSpec::Trellis.id());
        let back = PoolHeader::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back, h);
        assert_eq!(back.params().unwrap().transcoder(), TranscoderSpec::Trellis);
    }

    #[test]
    fn legacy_v1_header_decodes_as_direct_and_rejects_nonzero_pad() {
        // A pre-transcoder pool: version 1, zero pad byte at offset 19.
        let mut buf = Vec::new();
        sample_header().write_to(&mut buf).unwrap();
        assert_eq!(buf[19], 0, "direct pools keep the historical zero pad");
        let back = PoolHeader::read_from(&mut buf.as_slice()).unwrap();
        assert_eq!(back.transcoder, TranscoderSpec::Direct);

        // A v1 header with a nonzero pad byte is corrupt, not a transcoder.
        buf[19] = TranscoderSpec::Trellis.id();
        let crc = crc32(&buf[..42]);
        buf[42..46].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            PoolHeader::read_from(&mut buf.as_slice()),
            Err(StorageError::ManifestCorrupt { .. })
        ));
    }

    #[test]
    fn v2_header_rejects_unknown_transcoder_id() {
        let mut h = sample_header();
        h.version = 2;
        h.transcoder = TranscoderSpec::GcPadded;
        let mut buf = Vec::new();
        h.write_to(&mut buf).unwrap();
        buf[19] = 200;
        let crc = crc32(&buf[..42]);
        buf[42..46].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            PoolHeader::read_from(&mut buf.as_slice()),
            Err(StorageError::ManifestCorrupt { .. })
        ));
    }

    #[test]
    fn pool_header_rejects_corruption() {
        let mut buf = Vec::new();
        sample_header().write_to(&mut buf).unwrap();
        buf[12] ^= 1;
        assert!(matches!(
            PoolHeader::read_from(&mut buf.as_slice()),
            Err(StorageError::ManifestCorrupt { .. })
        ));
    }

    #[test]
    fn base_packing_round_trips() {
        let s: DnaString = "ACGTTGCAACG".parse().unwrap();
        let packed = pack_bases(s.as_slice());
        assert_eq!(packed.len(), 3);
        assert_eq!(unpack_bases(&packed, s.len()), s);
    }

    #[test]
    fn capsule_header_round_trips() {
        let (left, right) = capsule_primers(7, 3, 12).unwrap();
        let h = CapsuleHeader {
            seq: 3,
            object_id: 42,
            flags: FLAG_COMPRESSED,
            name: "photo.jpg".into(),
            units: 2,
            plain_len: 12345,
            stored_len: 999,
            left,
            right,
        };
        let mut buf = Vec::new();
        h.write_to(&mut buf).unwrap();
        let back = CapsuleHeader::read_from(&mut buf.as_slice(), 12).unwrap();
        assert_eq!(back, h);
        // Flip a name byte: CRC must catch it.
        let mut bad = buf.clone();
        bad[25] ^= 0x40;
        assert!(matches!(
            CapsuleHeader::read_from(&mut bad.as_slice(), 12),
            Err(StorageError::ManifestCorrupt { .. })
        ));
    }

    #[test]
    fn capsule_primers_are_deterministic_and_distinct() {
        let (l1, r1) = capsule_primers(5, 0, 16).unwrap();
        let (l2, r2) = capsule_primers(5, 0, 16).unwrap();
        assert_eq!(l1, l2);
        assert_eq!(r1, r2);
        let (l3, _) = capsule_primers(5, 1, 16).unwrap();
        assert_ne!(l1, l3, "different capsules draw different primers");
        assert!(l1.strand().hamming_distance(r1.strand()).unwrap() >= 5);
    }

    #[test]
    fn strand_sections_round_trip_and_detect_corruption() {
        let bases = 8;
        let units: Vec<Vec<DnaString>> = (0..2)
            .map(|u| {
                (0..3)
                    .map(|c| {
                        (0..bases)
                            .map(|i| Base::from_bits((u + c + i) as u8))
                            .collect()
                    })
                    .collect()
            })
            .collect();
        let mut buf = Vec::new();
        let written = write_strands(&mut buf, &units, bases).unwrap();
        assert_eq!(written, strand_section_len(2, 3, bases));
        let back = read_strands(&mut buf.as_slice(), 2, 3, bases).unwrap();
        assert_eq!(back, units);
        let mut bad = buf.clone();
        bad[1] ^= 1;
        assert!(read_strands(&mut bad.as_slice(), 2, 3, bases).is_err());
    }
}
