//! Streaming object store over the DNA pipeline.
//!
//! This crate turns the unit-at-a-time codec in `dna-storage` into an
//! *object store*: a pool file holding many named objects, each chunked
//! into independent, self-describing **survival capsules** — a fixed span
//! of encoding units sharing one PCR primer pair (the capsule's address),
//! an optional compress→encrypt layer, and CRC-guarded framing. Because
//! capsules are independent, both directions stream in constant memory:
//! [`ObjectStore::put`] reads any [`std::io::Read`] one capsule at a time,
//! and [`ObjectStore::fetch`] writes any [`std::io::Write`] the same way —
//! multi-gigabyte objects encode and decode at a bounded peak RSS.
//!
//! Random access is primer-addressed, mirroring PCR enrichment in wet
//! protocols: the persisted [`Manifest`] maps `object_id → capsule
//! ranges → primer pairs`, `fetch(object_id)` touches only the target
//! object's capsules, and each capsule's reads pass a primer prefilter
//! before decode. The manifest itself lives twice — as a sidecar file and
//! as a reserved super-capsule *inside the pool* — with
//! [`ObjectStore::rebuild_manifest`] as the full-scan fallback when both
//! are lost ([`StorageError::ManifestMissing`] /
//! [`StorageError::ManifestCorrupt`]).
//!
//! [`StorageError::ManifestMissing`]: dna_storage::StorageError::ManifestMissing
//! [`StorageError::ManifestCorrupt`]: dna_storage::StorageError::ManifestCorrupt
//!
//! ```
//! use dna_object::{ObjectStore, StoreConfig};
//!
//! let dir = std::env::temp_dir().join(format!("dnaobj-doc-{}", std::process::id()));
//! # let _ = std::fs::remove_dir_all(&dir);
//! let mut store = ObjectStore::create(&dir, StoreConfig::tiny()?)?;
//! let id = store.put_bytes("greeting", b"hello, helix")?;
//!
//! // Random access: only this object's capsules are read and decoded.
//! let mut out = Vec::new();
//! let report = store.fetch(id, &mut out)?;
//! assert_eq!(out, b"hello, helix");
//! assert_eq!(report.capsules, 1);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok::<(), dna_storage::StorageError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capsule;
pub mod checksum;
pub mod compress;
pub mod manifest;
pub mod store;

pub use capsule::{CapsuleHeader, LayoutKind, PoolHeader};
pub use manifest::{CapsuleEntry, Manifest, ObjectEntry};
pub use store::{
    cross_primer_min_distance, FetchOptions, FetchReport, ObjectStore, RebuildReport, StoreConfig,
    MANIFEST_FILE, POOL_FILE,
};
