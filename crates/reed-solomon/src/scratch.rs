//! The reusable decode workspace: every intermediate buffer a decode
//! needs, owned by the caller so steady-state decoding allocates nothing.

use crate::ReedSolomon;

/// Scratch buffers for [`ReedSolomon::decode_with_scratch`].
///
/// A fresh scratch starts empty; the first decode through it grows every
/// buffer to the code's working set (the *warm-up*), and subsequent
/// decodes of the same code reuse the capacity — zero heap allocations,
/// apart from the `positions` vector of the returned
/// [`Correction`](crate::Correction) when symbols were actually fixed.
///
/// A scratch may be reused freely across codes, fields, and failed
/// decodes: every buffer is rewritten from scratch at the start of each
/// call, so no state — not even from a decode that errored midway — can
/// leak into the next result.
///
/// # Examples
///
/// ```
/// use dna_gf::Field;
/// use dna_reed_solomon::{ReedSolomon, RsScratch};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let rs = ReedSolomon::new(Field::gf256(), 12, 8)?;
/// let mut cw = rs.encode(&(0..12).collect::<Vec<_>>())?;
/// cw[3] ^= 0x55;
/// let mut scratch = RsScratch::new();
/// let fix = rs.decode_with_scratch(&mut cw, &[], &mut scratch)?;
/// assert_eq!(fix.errors, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct RsScratch {
    /// Syndromes S_1..S_E.
    pub(crate) synd: Vec<u16>,
    /// Erasure-position dedup map, one flag per codeword position.
    pub(crate) seen: Vec<bool>,
    /// Erasure locator Γ(x), ascending.
    pub(crate) gamma: Vec<u16>,
    /// The product Γ(x)·S(x).
    pub(crate) gs: Vec<u16>,
    /// Forney syndromes (coefficients ρ..E−1 of Γ·S).
    pub(crate) forney: Vec<u16>,
    /// Error locator Λ(x) from Berlekamp–Massey.
    pub(crate) lambda: Vec<u16>,
    /// The BM auxiliary polynomial B(x).
    pub(crate) prev: Vec<u16>,
    /// BM update staging buffer.
    pub(crate) tmp: Vec<u16>,
    /// Combined locator Ψ = Λ·Γ.
    pub(crate) psi: Vec<u16>,
    /// Evaluator Ω = S·Ψ mod x^E.
    pub(crate) omega: Vec<u16>,
    /// Chien rotation registers: `chien[j] = Ψ_j · x_i^j` at position `i`.
    pub(crate) chien: Vec<u16>,
    /// Per-register step constants α^j for the Chien rotation.
    pub(crate) alpha_step: Vec<u16>,
    /// Found (position, magnitude) pairs.
    pub(crate) fixes: Vec<(usize, u16)>,
}

impl RsScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> RsScratch {
        RsScratch::default()
    }

    /// Pre-sizes every buffer for `rs` so that not even the first decode
    /// allocates. Optional — decoding warms a cold scratch up by itself.
    pub fn warm_up(&mut self, rs: &ReedSolomon) {
        let e = rs.parity_len();
        let l_cw = rs.codeword_len();
        reserve_to(&mut self.synd, e);
        if self.seen.len() < l_cw {
            self.seen.resize(l_cw, false);
        }
        reserve_to(&mut self.gamma, e + 1);
        reserve_to(&mut self.gs, 2 * e + 1);
        reserve_to(&mut self.forney, e);
        reserve_to(&mut self.lambda, 2 * e + 2);
        reserve_to(&mut self.prev, 2 * e + 2);
        reserve_to(&mut self.tmp, 2 * e + 2);
        reserve_to(&mut self.psi, 2 * e + 2);
        reserve_to(&mut self.omega, 3 * e + 2);
        reserve_to(&mut self.chien, e + 1);
        reserve_to(&mut self.alpha_step, e + 1);
        self.fixes.reserve((e + 1).saturating_sub(self.fixes.len()));
    }
}

fn reserve_to(v: &mut Vec<u16>, cap: usize) {
    v.reserve(cap.saturating_sub(v.len()));
}
