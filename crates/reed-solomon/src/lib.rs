//! Systematic Reed–Solomon codes over GF(2^m) with errors-and-erasures
//! decoding.
//!
//! This is the error-correction substrate of the DNA storage architecture
//! reproduced by this workspace (Organick et al., as used in *Managing
//! Reliability Bias in DNA Storage*, ISCA '22): data is laid out in a matrix
//! whose rows are Reed–Solomon codewords and whose columns are DNA molecules.
//! A lost molecule appears as one **erasure** in every codeword; insertion/
//! deletion noise surviving consensus appears as **substitution errors**.
//!
//! A codeword with `E` parity symbols corrects `ρ` erasures plus `ν` errors
//! whenever `2ν + ρ ≤ E` — e.g. up to `E` pure erasures or `E/2` pure errors,
//! exactly the capabilities quoted in the paper (§2.2).
//!
//! The decoder follows the classic pipeline: syndromes → erasure locator →
//! Forney syndromes → Berlekamp–Massey → Chien search → Forney magnitudes,
//! and reports per-codeword correction statistics (used to reproduce the
//! paper's Figure 11).
//!
//! The hot path is table-driven and allocation-free at steady state: the
//! encoder's LFSR taps and the decoder's syndrome roots each own a
//! precomputed [`dna_gf::MulTable`], and every decode intermediate lives
//! in an [`RsScratch`] workspace ([`ReedSolomon::decode`] keeps a
//! per-thread one; [`ReedSolomon::decode_with_scratch`] takes the
//! caller's). Kernel design and measurements are documented in
//! `PERFORMANCE.md` at the repository root.
//!
//! # Examples
//!
//! ```
//! use dna_gf::Field;
//! use dna_reed_solomon::ReedSolomon;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A shortened RS(20, 12) code over GF(256): 8 parity symbols.
//! let rs = ReedSolomon::new(Field::gf256(), 12, 8)?;
//! let data: Vec<u16> = (0..12).collect();
//! let mut cw = rs.encode(&data)?;
//!
//! cw[3] ^= 0x55; // two in-place corruptions
//! cw[17] ^= 0x0F;
//! let fix = rs.decode(&mut cw, &[])?;
//! assert_eq!(fix.errors, 2);
//! assert_eq!(&cw[..12], &data[..]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod code;
mod decoder;
mod family;
mod scratch;

pub use code::{Correction, ReedSolomon};
pub use family::CodeFamily;
pub use scratch::RsScratch;

use std::error::Error;
use std::fmt;

/// Errors produced by Reed–Solomon construction, encoding, and decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RsError {
    /// Invalid code geometry (zero lengths, or data+parity exceeding 2^m − 1).
    InvalidParams {
        /// Requested number of data symbols.
        data_len: usize,
        /// Requested number of parity symbols.
        parity_len: usize,
        /// Maximum codeword length for the field, 2^m − 1.
        max_len: usize,
    },
    /// The input block has the wrong length for this code.
    LengthMismatch {
        /// Length the code expects.
        expected: usize,
        /// Length the caller provided.
        actual: usize,
    },
    /// A symbol value does not fit in the field.
    SymbolOutOfRange {
        /// Index of the offending symbol.
        index: usize,
        /// The offending value.
        value: u16,
    },
    /// An erasure index is out of bounds or duplicated.
    BadErasure(usize),
    /// More erasures than parity symbols; the codeword is unrecoverable.
    TooManyErasures {
        /// Number of erasures supplied.
        erasures: usize,
        /// Number of parity symbols (the erasure capacity).
        capacity: usize,
    },
    /// The error pattern exceeds the code's correction capability; the
    /// received word was left unmodified.
    TooManyErrors,
}

impl fmt::Display for RsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsError::InvalidParams {
                data_len,
                parity_len,
                max_len,
            } => write!(
                f,
                "invalid RS parameters: data={data_len} parity={parity_len} exceeds max codeword length {max_len}"
            ),
            RsError::LengthMismatch { expected, actual } => {
                write!(f, "block length mismatch: expected {expected}, got {actual}")
            }
            RsError::SymbolOutOfRange { index, value } => {
                write!(f, "symbol {value} at index {index} does not fit the field")
            }
            RsError::BadErasure(i) => write!(f, "erasure index {i} is out of bounds or duplicated"),
            RsError::TooManyErasures { erasures, capacity } => {
                write!(f, "{erasures} erasures exceed capacity {capacity}")
            }
            RsError::TooManyErrors => write!(f, "error pattern exceeds correction capability"),
        }
    }
}

impl Error for RsError {}
