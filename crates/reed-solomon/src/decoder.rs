//! Errors-and-erasures decoding: syndromes, erasure locator, Forney
//! syndromes, Berlekamp–Massey, Chien search, and Forney magnitudes.
//!
//! Conventions: a codeword of length `L` maps position `i` (0 = first data
//! symbol) to the locator `X_i = α^(L−1−i)`, i.e. the codeword is the
//! polynomial `c(x) = Σ c_i · x^(L−1−i)`. Syndromes use consecutive roots
//! `α^1 … α^E` (fcr = 1), which keeps the Forney magnitude formula free of
//! the `X^(1−fcr)` factor.
//!
//! Every intermediate lives in the caller's [`RsScratch`], so steady-state
//! decoding performs no heap allocations (see `PERFORMANCE.md`): syndromes
//! run through the per-root [`dna_gf::MulTable`] Horner kernel, the Chien
//! search is the incremental coefficient-rotation form with an early exit
//! once all `deg Ψ` roots are found, and the polynomial products reuse
//! scratch buffers via [`poly::mul_into`].

use crate::code::{Correction, ReedSolomon};
use crate::scratch::RsScratch;
use crate::RsError;
use dna_gf::poly;

/// Berlekamp–Massey over the (Forney) syndrome sequence; leaves the error
/// locator Λ(x) in `lambda`, ascending order (Λ[0] = 1), trimmed to its
/// degree. `prev` and `tmp` are staging buffers for B(x) and the
/// pre-update Λ snapshot.
fn berlekamp_massey_into(
    rs: &ReedSolomon,
    synd: &[u16],
    lambda: &mut Vec<u16>,
    prev: &mut Vec<u16>,
    tmp: &mut Vec<u16>,
) {
    let field = rs.field();
    lambda.clear();
    lambda.push(1);
    prev.clear();
    prev.push(1); // B(x)
    let mut l = 0usize; // current LFSR length
    let mut m = 1usize; // steps since last update
    let mut b = 1u16; // discrepancy at last update
    for n in 0..synd.len() {
        let mut delta = synd[n];
        for i in 1..=l.min(lambda.len() - 1) {
            delta ^= field.mul(lambda[i], synd[n - i]);
        }
        if delta == 0 {
            m += 1;
            continue;
        }
        let coef = field
            .div(delta, b)
            .expect("b is a recorded non-zero discrepancy");
        if 2 * l <= n {
            tmp.clear();
            tmp.extend_from_slice(lambda);
            if lambda.len() < prev.len() + m {
                lambda.resize(prev.len() + m, 0);
            }
            // λ(x) -= coef · x^m · B(x)
            field.mul_add_slice(&mut lambda[m..m + prev.len()], prev, coef);
            l = n + 1 - l;
            std::mem::swap(prev, tmp);
            b = delta;
            m = 1;
        } else {
            if lambda.len() < prev.len() + m {
                lambda.resize(prev.len() + m, 0);
            }
            field.mul_add_slice(&mut lambda[m..m + prev.len()], prev, coef);
            m += 1;
        }
    }
    // Trim trailing zeros but keep at least the constant term.
    let deg = poly::degree(lambda).unwrap_or(0);
    lambda.truncate(deg + 1);
}

/// Multiplies `gamma` by `(1 + X·x)` in place (one erasure locator step).
fn gamma_step(rs: &ReedSolomon, gamma: &mut Vec<u16>, x: u16) {
    let field = rs.field();
    gamma.push(0);
    for j in (1..gamma.len()).rev() {
        let carry = field.mul(gamma[j - 1], x);
        gamma[j] ^= carry;
    }
}

pub(crate) fn decode_with_scratch(
    rs: &ReedSolomon,
    received: &mut [u16],
    erasures: &[usize],
    s: &mut RsScratch,
) -> Result<Correction, RsError> {
    let field = rs.field();
    let l_cw = rs.codeword_len();
    let e = rs.parity_len();
    if received.len() != l_cw {
        return Err(RsError::LengthMismatch {
            expected: l_cw,
            actual: received.len(),
        });
    }
    if let Some(bad) = received
        .iter()
        .position(|&s| usize::from(s) >= field.order())
    {
        return Err(RsError::SymbolOutOfRange {
            index: bad,
            value: received[bad],
        });
    }
    s.seen.clear();
    s.seen.resize(l_cw, false);
    for &pos in erasures {
        if pos >= l_cw || s.seen[pos] {
            return Err(RsError::BadErasure(pos));
        }
        s.seen[pos] = true;
    }
    if erasures.len() > e {
        return Err(RsError::TooManyErasures {
            erasures: erasures.len(),
            capacity: e,
        });
    }

    rs.syndromes_into(received, &mut s.synd);
    if s.synd.iter().all(|&v| v == 0) {
        return Ok(Correction::default());
    }

    // Erasure locator Γ(x) = Π_k (1 − X_k·x) from position → locator
    // α^(L−1−i), built up one in-place step per erasure.
    s.gamma.clear();
    s.gamma.push(1);
    for &pos in erasures {
        let x = field.alpha_pow((l_cw - 1 - pos) as i64);
        gamma_step(rs, &mut s.gamma, x);
    }

    // Forney syndromes: coefficients ρ..E−1 of Γ(x)·S(x).
    let rho = erasures.len();
    poly::mul_into(field, &s.gamma, &s.synd, &mut s.gs);
    s.forney.clear();
    s.forney
        .extend((rho..e).map(|i| s.gs.get(i).copied().unwrap_or(0)));

    berlekamp_massey_into(rs, &s.forney, &mut s.lambda, &mut s.prev, &mut s.tmp);
    let nu = poly::degree(&s.lambda).unwrap_or(0);
    if 2 * nu + rho > e {
        return Err(RsError::TooManyErrors);
    }

    // Combined locator Ψ = Λ·Γ and evaluator Ω = S·Ψ mod x^E.
    poly::mul_into(field, &s.lambda, &s.gamma, &mut s.psi);
    poly::mul_into(field, &s.synd, &s.psi, &mut s.omega);
    s.omega.truncate(e);
    let psi_deg = poly::degree(&s.psi).unwrap_or(0);

    // Chien search in coefficient-rotation form: register j holds
    // Ψ_j · x_i^j for the current position's evaluation point
    // x_i = X_i^{-1} = α^{−(L−1−i)}; position i is corrupted iff the
    // registers XOR to zero. Stepping i → i+1 multiplies register j by
    // α^j. Once deg Ψ roots are found no further roots can exist, so the
    // scan exits early instead of walking all L positions.
    s.chien.clear();
    s.chien.extend_from_slice(&s.psi[..psi_deg + 1]);
    s.alpha_step.clear();
    s.alpha_step.push(1);
    let x0 = field.alpha_pow(-((l_cw - 1) as i64));
    let mut x0_pow = 1u16;
    for j in 1..=psi_deg {
        x0_pow = field.mul(x0_pow, x0);
        s.chien[j] = field.mul(s.chien[j], x0_pow);
        s.alpha_step.push(field.alpha_pow(j as i64));
    }
    s.fixes.clear();
    for i in 0..l_cw {
        if s.fixes.len() == psi_deg {
            break; // every root found — the locator has no more
        }
        let eval = s.chien[..=psi_deg].iter().fold(0u16, |a, &c| a ^ c);
        if eval == 0 {
            let x_inv = field.alpha_pow(-((l_cw - 1 - i) as i64));
            // Forney magnitude Ω(x)/Ψ'(x). In characteristic 2,
            // x·Ψ'(x) = Σ_{j odd} Ψ_j x^j is the XOR of the odd
            // registers, so the division scales both sides by x.
            let num = s
                .omega
                .iter()
                .rev()
                .fold(0u16, |acc, &c| field.mul(acc, x_inv) ^ c);
            let mut odd = 0u16;
            let mut j = 1;
            while j <= psi_deg {
                odd ^= s.chien[j];
                j += 2;
            }
            let magnitude = field
                .div(field.mul(num, x_inv), odd)
                .map_err(|_| RsError::TooManyErrors)?;
            s.fixes.push((i, magnitude));
        }
        for j in 1..=psi_deg {
            s.chien[j] = field.mul(s.chien[j], s.alpha_step[j]);
        }
    }
    if s.fixes.len() != psi_deg {
        // The locator does not split over the field: uncorrectable pattern.
        return Err(RsError::TooManyErrors);
    }

    // Apply tentatively, verify, and roll back on mis-correction. The
    // verification updates the syndromes incrementally instead of
    // re-scanning the codeword: flipping position i by `mag` changes
    // S_j by mag·X_i^j with X_i = α^(L−1−i) — exact field arithmetic,
    // so the verdict is identical to recomputing from scratch at a
    // fraction of the cost (E products per fix instead of E·L loads).
    for &(i, mag) in &s.fixes {
        received[i] ^= mag;
        let x = field.alpha_pow((l_cw - 1 - i) as i64);
        let mut cur = mag;
        for slot in s.synd.iter_mut() {
            cur = field.mul(cur, x);
            *slot ^= cur;
        }
    }
    if s.synd.iter().any(|&v| v != 0) {
        for &(i, mag) in &s.fixes {
            received[i] ^= mag;
        }
        return Err(RsError::TooManyErrors);
    }

    let mut correction = Correction::default();
    for &(i, mag) in &s.fixes {
        if mag == 0 {
            continue; // an erased position that already held the right symbol
        }
        if s.seen[i] {
            correction.erasures += 1;
        } else {
            correction.errors += 1;
        }
        correction.positions.push(i);
    }
    correction.positions.sort_unstable();
    Ok(correction)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_gf::Field;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn code(data: usize, parity: usize) -> ReedSolomon {
        ReedSolomon::new(Field::gf256(), data, parity).expect("valid params")
    }

    fn sample_data(rng: &mut StdRng, len: usize, order: u16) -> Vec<u16> {
        (0..len).map(|_| rng.gen_range(0..order)).collect()
    }

    #[test]
    fn clean_codeword_decodes_to_no_corrections() {
        let rs = code(20, 10);
        let mut cw = rs.encode(&(0..20).collect::<Vec<_>>()).unwrap();
        let c = rs.decode(&mut cw, &[]).unwrap();
        assert_eq!(c, Correction::default());
    }

    #[test]
    fn corrects_single_error_at_every_position() {
        let rs = ReedSolomon::new(Field::gf16(), 9, 6).unwrap();
        let data = [0u16, 1, 2, 3, 4, 5, 6, 7, 8];
        let clean = rs.encode(&data).unwrap();
        for pos in 0..rs.codeword_len() {
            for mag in [1u16, 7, 15] {
                let mut cw = clean.clone();
                cw[pos] ^= mag;
                let c = rs.decode(&mut cw, &[]).unwrap_or_else(|e| {
                    panic!("pos={pos} mag={mag}: {e}");
                });
                assert_eq!(cw, clean, "pos={pos} mag={mag}");
                assert_eq!(c.errors, 1);
                assert_eq!(c.positions, vec![pos]);
            }
        }
    }

    #[test]
    fn corrects_up_to_half_parity_errors() {
        let mut rng = StdRng::seed_from_u64(7);
        let rs = code(40, 16);
        for trial in 0..50 {
            let data = sample_data(&mut rng, 40, 256);
            let clean = rs.encode(&data).unwrap();
            let mut cw = clean.clone();
            let nerr = rng.gen_range(1..=8);
            let mut positions: Vec<usize> = (0..rs.codeword_len()).collect();
            for k in 0..nerr {
                let j = rng.gen_range(k..positions.len());
                positions.swap(k, j);
                cw[positions[k]] ^= rng.gen_range(1..256) as u16;
            }
            let c = rs.decode(&mut cw, &[]).unwrap_or_else(|e| {
                panic!("trial={trial} nerr={nerr}: {e}");
            });
            assert_eq!(cw, clean);
            assert_eq!(c.errors, nerr);
        }
    }

    #[test]
    fn corrects_full_parity_worth_of_erasures() {
        let mut rng = StdRng::seed_from_u64(8);
        let rs = code(30, 12);
        let data = sample_data(&mut rng, 30, 256);
        let clean = rs.encode(&data).unwrap();
        let mut cw = clean.clone();
        let erased: Vec<usize> = (0..12).map(|k| k * 3).collect();
        for &pos in &erased {
            cw[pos] = 0; // decoder convention: erased symbols read as 0
        }
        let c = rs.decode(&mut cw, &erased).unwrap();
        assert_eq!(cw, clean);
        assert!(c.erasures <= 12 && c.errors == 0);
    }

    #[test]
    fn corrects_mixed_errors_and_erasures_within_capacity() {
        let mut rng = StdRng::seed_from_u64(9);
        let rs = code(40, 16);
        for _ in 0..30 {
            let data = sample_data(&mut rng, 40, 256);
            let clean = rs.encode(&data).unwrap();
            let mut cw = clean.clone();
            // 2ν + ρ ≤ E: pick ν=5, ρ=6 → 16 ≤ 16.
            let mut positions: Vec<usize> = (0..rs.codeword_len()).collect();
            for k in 0..11 {
                let j = rng.gen_range(k..positions.len());
                positions.swap(k, j);
            }
            let erased: Vec<usize> = positions[..6].to_vec();
            for &p in &erased {
                cw[p] = rng.gen_range(0..256) as u16; // garbage, location known
            }
            for &p in &positions[6..11] {
                cw[p] ^= rng.gen_range(1..256) as u16;
            }
            rs.decode(&mut cw, &erased).unwrap();
            assert_eq!(cw, clean);
        }
    }

    #[test]
    fn beyond_capacity_fails_and_leaves_input_unmodified() {
        let mut rng = StdRng::seed_from_u64(10);
        let rs = code(20, 6);
        let data = sample_data(&mut rng, 20, 256);
        let clean = rs.encode(&data).unwrap();
        let mut failures = 0;
        for trial in 0..40 {
            let mut cw = clean.clone();
            // 7 errors > E/2 = 3: must not be silently "corrected" back to clean.
            let mut positions: Vec<usize> = (0..rs.codeword_len()).collect();
            for k in 0..7 {
                let j = rng.gen_range(k..positions.len());
                positions.swap(k, j);
                cw[positions[k]] ^= rng.gen_range(1..256) as u16;
            }
            let snapshot = cw.clone();
            match rs.decode(&mut cw, &[]) {
                Err(RsError::TooManyErrors) => {
                    failures += 1;
                    assert_eq!(cw, snapshot, "trial {trial}: failed decode must not mutate");
                }
                Ok(_) => {
                    // Miscorrection to a *different* valid codeword is allowed
                    // (bounded-distance decoding), but never back to clean.
                    assert!(rs.is_codeword(&cw));
                    assert_ne!(cw, clean, "trial {trial}");
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(
            failures > 25,
            "most over-capacity patterns should be detected, got {failures}/40"
        );
    }

    #[test]
    fn too_many_erasures_is_reported() {
        let rs = code(20, 6);
        let mut cw = rs.encode(&[0; 20]).unwrap();
        let erased: Vec<usize> = (0..7).collect();
        assert!(matches!(
            rs.decode(&mut cw, &erased),
            Err(RsError::TooManyErasures {
                erasures: 7,
                capacity: 6
            })
        ));
    }

    #[test]
    fn duplicate_or_out_of_range_erasures_rejected() {
        let rs = code(20, 6);
        let mut cw = rs.encode(&[0; 20]).unwrap();
        assert!(matches!(
            rs.decode(&mut cw, &[3, 3]),
            Err(RsError::BadErasure(3))
        ));
        assert!(matches!(
            rs.decode(&mut cw, &[26]),
            Err(RsError::BadErasure(26))
        ));
    }

    #[test]
    fn erasure_that_held_correct_symbol_is_not_counted() {
        let rs = code(20, 6);
        let clean = rs.encode(&(0..20).collect::<Vec<_>>()).unwrap();
        let mut cw = clean.clone();
        cw[2] ^= 9; // one real error
                    // Position 5 declared erased but its symbol is actually fine.
        let c = rs.decode(&mut cw, &[5]).unwrap();
        assert_eq!(cw, clean);
        assert_eq!(c.errors, 1);
        assert_eq!(c.erasures, 0);
        assert_eq!(c.positions, vec![2]);
    }

    #[test]
    fn works_over_gf65536() {
        let mut rng = StdRng::seed_from_u64(11);
        let rs = ReedSolomon::new(Field::gf65536(), 50, 14).unwrap();
        let data = sample_data(&mut rng, 50, u16::MAX);
        let clean = rs.encode(&data).unwrap();
        let mut cw = clean.clone();
        for pos in [0usize, 13, 44, 63] {
            cw[pos] ^= 0xBEEF;
        }
        for pos in [20usize, 30, 40] {
            cw[pos] = 0;
        }
        let c = rs.decode(&mut cw, &[20, 30, 40]).unwrap();
        assert_eq!(cw, clean);
        assert_eq!(c.errors, 4);
    }

    #[test]
    fn scratch_reuse_across_codes_and_failures_matches_fresh() {
        // One scratch reused across different geometries, fields, and a
        // failing decode in between; every result must equal a fresh-
        // scratch decode.
        let mut rng = StdRng::seed_from_u64(12);
        let mut shared = RsScratch::new();
        let codes = [
            ReedSolomon::new(Field::gf16(), 9, 6).unwrap(),
            ReedSolomon::new(Field::gf256(), 40, 16).unwrap(),
            ReedSolomon::new(Field::gf65536(), 30, 10).unwrap(),
        ];
        for trial in 0..12 {
            let rs = &codes[trial % codes.len()];
            // Largest non-zero symbol (caps at u16::MAX for GF(65536)).
            let max_sym = (rs.field().order() - 1).min(usize::from(u16::MAX)) as u16;
            let data = sample_data(&mut rng, rs.data_len(), max_sym);
            let clean = rs.encode(&data).unwrap();
            let mut cw = clean.clone();
            for k in 0..rs.parity_len() / 2 {
                cw[(k * 5) % rs.codeword_len()] ^= 1 + (trial as u16 % max_sym);
            }
            let mut fresh_cw = cw.clone();
            let fresh = rs.decode_with_scratch(&mut fresh_cw, &[], &mut RsScratch::new());
            let shared_res = rs.decode_with_scratch(&mut cw, &[], &mut shared);
            assert_eq!(fresh, shared_res, "trial {trial}");
            assert_eq!(fresh_cw, cw, "trial {trial}");
            // Poison the shared scratch with a hopeless decode.
            let mut garbage: Vec<u16> = (0..rs.codeword_len())
                .map(|_| rng.gen_range(0..=max_sym))
                .collect();
            let _ = rs.decode_with_scratch(&mut garbage, &[0, 2], &mut shared);
        }
    }
}
