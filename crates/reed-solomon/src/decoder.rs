//! Errors-and-erasures decoding: syndromes, erasure locator, Forney
//! syndromes, Berlekamp–Massey, Chien search, and Forney magnitudes.
//!
//! Conventions: a codeword of length `L` maps position `i` (0 = first data
//! symbol) to the locator `X_i = α^(L−1−i)`, i.e. the codeword is the
//! polynomial `c(x) = Σ c_i · x^(L−1−i)`. Syndromes use consecutive roots
//! `α^1 … α^E` (fcr = 1), which keeps the Forney magnitude formula free of
//! the `X^(1−fcr)` factor.

use crate::code::{Correction, ReedSolomon};
use crate::RsError;
use dna_gf::{poly, Field};

/// Computes the `E` syndromes `S_j = r(α^j)`, `j = 1..=E`, by Horner's rule
/// over the received symbols in transmission order.
pub(crate) fn syndromes(field: &Field, received: &[u16], parity_len: usize) -> Vec<u16> {
    (1..=parity_len)
        .map(|j| {
            let root = field.alpha_pow(j as i64);
            let mut acc = 0u16;
            for &r in received {
                acc = field.add(field.mul(acc, root), r);
            }
            acc
        })
        .collect()
}

/// Berlekamp–Massey over the (Forney) syndrome sequence; returns the error
/// locator Λ(x) in ascending order (Λ[0] = 1).
fn berlekamp_massey(field: &Field, synd: &[u16]) -> Vec<u16> {
    let mut lambda = vec![1u16];
    let mut prev = vec![1u16]; // B(x)
    let mut l = 0usize; // current LFSR length
    let mut m = 1usize; // steps since last update
    let mut b = 1u16; // discrepancy at last update
    for n in 0..synd.len() {
        let mut delta = synd[n];
        for i in 1..=l.min(lambda.len() - 1) {
            delta ^= field.mul(lambda[i], synd[n - i]);
        }
        if delta == 0 {
            m += 1;
        } else if 2 * l <= n {
            let old = lambda.clone();
            let coef = field
                .div(delta, b)
                .expect("b is a recorded non-zero discrepancy");
            // λ(x) -= coef · x^m · B(x)
            if lambda.len() < prev.len() + m {
                lambda.resize(prev.len() + m, 0);
            }
            for (i, &p) in prev.iter().enumerate() {
                lambda[i + m] ^= field.mul(coef, p);
            }
            l = n + 1 - l;
            prev = old;
            b = delta;
            m = 1;
        } else {
            let coef = field
                .div(delta, b)
                .expect("b is a recorded non-zero discrepancy");
            if lambda.len() < prev.len() + m {
                lambda.resize(prev.len() + m, 0);
            }
            for (i, &p) in prev.iter().enumerate() {
                lambda[i + m] ^= field.mul(coef, p);
            }
            m += 1;
        }
    }
    // Trim trailing zeros but keep at least the constant term.
    let deg = poly::degree(&lambda).unwrap_or(0);
    lambda.truncate(deg + 1);
    lambda
}

/// The erasure locator Γ(x) = Π_k (1 − X_k·x), ascending coefficients.
fn erasure_locator(field: &Field, locators: &[u16]) -> Vec<u16> {
    let mut gamma = vec![1u16];
    for &x in locators {
        // multiply by (1 + X·x)
        let mut next = vec![0u16; gamma.len() + 1];
        for (i, &g) in gamma.iter().enumerate() {
            next[i] ^= g;
            next[i + 1] ^= field.mul(g, x);
        }
        gamma = next;
    }
    gamma
}

pub(crate) fn decode(
    rs: &ReedSolomon,
    received: &mut [u16],
    erasures: &[usize],
) -> Result<Correction, RsError> {
    let field = rs.field().clone();
    let l_cw = rs.codeword_len();
    let e = rs.parity_len();
    if received.len() != l_cw {
        return Err(RsError::LengthMismatch {
            expected: l_cw,
            actual: received.len(),
        });
    }
    if let Some(bad) = received
        .iter()
        .position(|&s| usize::from(s) >= field.order())
    {
        return Err(RsError::SymbolOutOfRange {
            index: bad,
            value: received[bad],
        });
    }
    let mut seen = vec![false; l_cw];
    for &pos in erasures {
        if pos >= l_cw || seen[pos] {
            return Err(RsError::BadErasure(pos));
        }
        seen[pos] = true;
    }
    if erasures.len() > e {
        return Err(RsError::TooManyErasures {
            erasures: erasures.len(),
            capacity: e,
        });
    }

    let synd = syndromes(&field, received, e);
    if synd.iter().all(|&s| s == 0) {
        return Ok(Correction::default());
    }

    // Erasure locator from position → locator α^(L−1−i).
    let erasure_locs: Vec<u16> = erasures
        .iter()
        .map(|&i| field.alpha_pow((l_cw - 1 - i) as i64))
        .collect();
    let gamma = erasure_locator(&field, &erasure_locs);

    // Forney syndromes: coefficients ρ..E−1 of Γ(x)·S(x).
    let rho = erasures.len();
    let gs = poly::mul(&field, &gamma, &synd);
    let forney_synd: Vec<u16> = (rho..e).map(|i| *gs.get(i).unwrap_or(&0)).collect();

    let lambda = berlekamp_massey(&field, &forney_synd);
    let nu = poly::degree(&lambda).unwrap_or(0);
    if 2 * nu + rho > e {
        return Err(RsError::TooManyErrors);
    }

    // Combined locator Ψ = Λ·Γ and evaluator Ω = S·Ψ mod x^E.
    let psi = poly::mul(&field, &lambda, &gamma);
    let omega = poly::mod_xk(&poly::mul(&field, &synd, &psi), e);
    let psi_deg = poly::degree(&psi).unwrap_or(0);

    // Chien search: position i is corrupted iff Ψ(X_i^{-1}) = 0.
    let psi_prime = poly::derivative(&field, &psi);
    let mut fixes: Vec<(usize, u16)> = Vec::with_capacity(psi_deg);
    for i in 0..l_cw {
        let x_inv = field.alpha_pow(-((l_cw - 1 - i) as i64));
        if poly::eval(&field, &psi, x_inv) == 0 {
            let num = poly::eval(&field, &omega, x_inv);
            let den = poly::eval(&field, &psi_prime, x_inv);
            let magnitude = field.div(num, den).map_err(|_| RsError::TooManyErrors)?;
            fixes.push((i, magnitude));
        }
    }
    if fixes.len() != psi_deg {
        // The locator does not split over the field: uncorrectable pattern.
        return Err(RsError::TooManyErrors);
    }

    // Apply tentatively, verify, and roll back on mis-correction.
    for &(i, mag) in &fixes {
        received[i] ^= mag;
    }
    if syndromes(&field, received, e).iter().any(|&s| s != 0) {
        for &(i, mag) in &fixes {
            received[i] ^= mag;
        }
        return Err(RsError::TooManyErrors);
    }

    let mut correction = Correction::default();
    for &(i, mag) in &fixes {
        if mag == 0 {
            continue; // an erased position that already held the right symbol
        }
        if seen[i] {
            correction.erasures += 1;
        } else {
            correction.errors += 1;
        }
        correction.positions.push(i);
    }
    correction.positions.sort_unstable();
    Ok(correction)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_gf::Field;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn code(data: usize, parity: usize) -> ReedSolomon {
        ReedSolomon::new(Field::gf256(), data, parity).expect("valid params")
    }

    fn sample_data(rng: &mut StdRng, len: usize, order: u16) -> Vec<u16> {
        (0..len).map(|_| rng.gen_range(0..order)).collect()
    }

    #[test]
    fn clean_codeword_decodes_to_no_corrections() {
        let rs = code(20, 10);
        let mut cw = rs.encode(&(0..20).collect::<Vec<_>>()).unwrap();
        let c = rs.decode(&mut cw, &[]).unwrap();
        assert_eq!(c, Correction::default());
    }

    #[test]
    fn corrects_single_error_at_every_position() {
        let rs = ReedSolomon::new(Field::gf16(), 9, 6).unwrap();
        let data = [0u16, 1, 2, 3, 4, 5, 6, 7, 8];
        let clean = rs.encode(&data).unwrap();
        for pos in 0..rs.codeword_len() {
            for mag in [1u16, 7, 15] {
                let mut cw = clean.clone();
                cw[pos] ^= mag;
                let c = rs.decode(&mut cw, &[]).unwrap_or_else(|e| {
                    panic!("pos={pos} mag={mag}: {e}");
                });
                assert_eq!(cw, clean, "pos={pos} mag={mag}");
                assert_eq!(c.errors, 1);
                assert_eq!(c.positions, vec![pos]);
            }
        }
    }

    #[test]
    fn corrects_up_to_half_parity_errors() {
        let mut rng = StdRng::seed_from_u64(7);
        let rs = code(40, 16);
        for trial in 0..50 {
            let data = sample_data(&mut rng, 40, 256);
            let clean = rs.encode(&data).unwrap();
            let mut cw = clean.clone();
            let nerr = rng.gen_range(1..=8);
            let mut positions: Vec<usize> = (0..rs.codeword_len()).collect();
            for k in 0..nerr {
                let j = rng.gen_range(k..positions.len());
                positions.swap(k, j);
                cw[positions[k]] ^= rng.gen_range(1..256) as u16;
            }
            let c = rs.decode(&mut cw, &[]).unwrap_or_else(|e| {
                panic!("trial={trial} nerr={nerr}: {e}");
            });
            assert_eq!(cw, clean);
            assert_eq!(c.errors, nerr);
        }
    }

    #[test]
    fn corrects_full_parity_worth_of_erasures() {
        let mut rng = StdRng::seed_from_u64(8);
        let rs = code(30, 12);
        let data = sample_data(&mut rng, 30, 256);
        let clean = rs.encode(&data).unwrap();
        let mut cw = clean.clone();
        let erased: Vec<usize> = (0..12).map(|k| k * 3).collect();
        for &pos in &erased {
            cw[pos] = 0; // decoder convention: erased symbols read as 0
        }
        let c = rs.decode(&mut cw, &erased).unwrap();
        assert_eq!(cw, clean);
        assert!(c.erasures <= 12 && c.errors == 0);
    }

    #[test]
    fn corrects_mixed_errors_and_erasures_within_capacity() {
        let mut rng = StdRng::seed_from_u64(9);
        let rs = code(40, 16);
        for _ in 0..30 {
            let data = sample_data(&mut rng, 40, 256);
            let clean = rs.encode(&data).unwrap();
            let mut cw = clean.clone();
            // 2ν + ρ ≤ E: pick ν=5, ρ=6 → 16 ≤ 16.
            let mut positions: Vec<usize> = (0..rs.codeword_len()).collect();
            for k in 0..11 {
                let j = rng.gen_range(k..positions.len());
                positions.swap(k, j);
            }
            let erased: Vec<usize> = positions[..6].to_vec();
            for &p in &erased {
                cw[p] = rng.gen_range(0..256) as u16; // garbage, location known
            }
            for &p in &positions[6..11] {
                cw[p] ^= rng.gen_range(1..256) as u16;
            }
            rs.decode(&mut cw, &erased).unwrap();
            assert_eq!(cw, clean);
        }
    }

    #[test]
    fn beyond_capacity_fails_and_leaves_input_unmodified() {
        let mut rng = StdRng::seed_from_u64(10);
        let rs = code(20, 6);
        let data = sample_data(&mut rng, 20, 256);
        let clean = rs.encode(&data).unwrap();
        let mut failures = 0;
        for trial in 0..40 {
            let mut cw = clean.clone();
            // 7 errors > E/2 = 3: must not be silently "corrected" back to clean.
            let mut positions: Vec<usize> = (0..rs.codeword_len()).collect();
            for k in 0..7 {
                let j = rng.gen_range(k..positions.len());
                positions.swap(k, j);
                cw[positions[k]] ^= rng.gen_range(1..256) as u16;
            }
            let snapshot = cw.clone();
            match rs.decode(&mut cw, &[]) {
                Err(RsError::TooManyErrors) => {
                    failures += 1;
                    assert_eq!(cw, snapshot, "trial {trial}: failed decode must not mutate");
                }
                Ok(_) => {
                    // Miscorrection to a *different* valid codeword is allowed
                    // (bounded-distance decoding), but never back to clean.
                    assert!(rs.is_codeword(&cw));
                    assert_ne!(cw, clean, "trial {trial}");
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(
            failures > 25,
            "most over-capacity patterns should be detected, got {failures}/40"
        );
    }

    #[test]
    fn too_many_erasures_is_reported() {
        let rs = code(20, 6);
        let mut cw = rs.encode(&[0; 20]).unwrap();
        let erased: Vec<usize> = (0..7).collect();
        assert!(matches!(
            rs.decode(&mut cw, &erased),
            Err(RsError::TooManyErasures {
                erasures: 7,
                capacity: 6
            })
        ));
    }

    #[test]
    fn duplicate_or_out_of_range_erasures_rejected() {
        let rs = code(20, 6);
        let mut cw = rs.encode(&[0; 20]).unwrap();
        assert!(matches!(
            rs.decode(&mut cw, &[3, 3]),
            Err(RsError::BadErasure(3))
        ));
        assert!(matches!(
            rs.decode(&mut cw, &[26]),
            Err(RsError::BadErasure(26))
        ));
    }

    #[test]
    fn erasure_that_held_correct_symbol_is_not_counted() {
        let rs = code(20, 6);
        let clean = rs.encode(&(0..20).collect::<Vec<_>>()).unwrap();
        let mut cw = clean.clone();
        cw[2] ^= 9; // one real error
                    // Position 5 declared erased but its symbol is actually fine.
        let c = rs.decode(&mut cw, &[5]).unwrap();
        assert_eq!(cw, clean);
        assert_eq!(c.errors, 1);
        assert_eq!(c.erasures, 0);
        assert_eq!(c.positions, vec![2]);
    }

    #[test]
    fn works_over_gf65536() {
        let mut rng = StdRng::seed_from_u64(11);
        let rs = ReedSolomon::new(Field::gf65536(), 50, 14).unwrap();
        let data = sample_data(&mut rng, 50, u16::MAX);
        let clean = rs.encode(&data).unwrap();
        let mut cw = clean.clone();
        for pos in [0usize, 13, 44, 63] {
            cw[pos] ^= 0xBEEF;
        }
        for pos in [20usize, 30, 40] {
            cw[pos] = 0;
        }
        let c = rs.decode(&mut cw, &[20, 30, 40]).unwrap();
        assert_eq!(cw, clean);
        assert_eq!(c.errors, 4);
    }
}
