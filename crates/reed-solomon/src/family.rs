//! [`CodeFamily`]: a shared cache of same-data-length Reed–Solomon codes
//! at multiple rates.
//!
//! Unequal-protection plans (the skew-aware planner in `dna-storage`)
//! give every reliability class its own parity length while all classes
//! share the data length `M`. Building a [`ReedSolomon`] is not free —
//! the constructor precomputes the generator polynomial, the flattened
//! LFSR tap tables, and one Horner table per syndrome root — so a plan
//! with three classes should pay that cost three times, not once per
//! codeword. A `CodeFamily` holds one immutable code per distinct parity
//! length; pipelines `Arc`-share the family and look codes up by rate on
//! the hot path.
//!
//! Every member code runs over the same field and data length, so one
//! [`RsScratch`](crate::RsScratch) serves all of them: the scratch
//! resizes to each decode's dimensions and is rewritten from scratch per
//! call (see `family_codes_share_one_scratch` in the tests).
//!
//! # Examples
//!
//! ```
//! use dna_gf::Field;
//! use dna_reed_solomon::CodeFamily;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // RS(10+e, 10) over GF(256) at three protection levels.
//! let family = CodeFamily::with_rates(Field::gf256(), 10, [4, 8, 16])?;
//! assert_eq!(family.rates(), vec![4, 8, 16]);
//! let strong = family.get(16).expect("built rate");
//! assert_eq!(strong.codeword_len(), 26);
//! assert!(family.get(5).is_none()); // only requested rates are built
//! # Ok(())
//! # }
//! ```

use crate::code::ReedSolomon;
use crate::RsError;
use dna_gf::Field;
use std::collections::BTreeMap;

/// A family of systematic Reed–Solomon codes sharing one field and data
/// length, cached by parity length.
#[derive(Debug, Clone)]
pub struct CodeFamily {
    field: Field,
    data_len: usize,
    codes: BTreeMap<usize, ReedSolomon>,
}

impl CodeFamily {
    /// An empty family over `field` with `data_len` data symbols per
    /// codeword; add rates with [`CodeFamily::ensure`].
    ///
    /// # Errors
    ///
    /// Returns [`RsError::InvalidParams`] when `data_len` is zero or
    /// already exceeds the field's maximum codeword length (leaving no
    /// room for even one parity symbol).
    pub fn new(field: Field, data_len: usize) -> Result<CodeFamily, RsError> {
        if data_len == 0 || data_len + 1 > field.group_order() {
            return Err(RsError::InvalidParams {
                data_len,
                parity_len: 1,
                max_len: field.group_order(),
            });
        }
        Ok(CodeFamily {
            field,
            data_len,
            codes: BTreeMap::new(),
        })
    }

    /// A family with the given parity lengths prebuilt. Duplicate and
    /// zero rates are ignored (a zero-parity "code" is no code at all —
    /// callers treat it as the unprotected passthrough).
    ///
    /// # Errors
    ///
    /// Returns [`RsError::InvalidParams`] when any rate pushes the
    /// codeword past the field's maximum length.
    pub fn with_rates(
        field: Field,
        data_len: usize,
        rates: impl IntoIterator<Item = usize>,
    ) -> Result<CodeFamily, RsError> {
        let mut family = CodeFamily::new(field, data_len)?;
        for parity in rates {
            if parity > 0 {
                family.ensure(parity)?;
            }
        }
        Ok(family)
    }

    /// Returns the RS(data_len + parity, data_len) member, building and
    /// caching it on first request.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::InvalidParams`] when `parity` is zero or the
    /// codeword would exceed the field's maximum length.
    pub fn ensure(&mut self, parity: usize) -> Result<&ReedSolomon, RsError> {
        if let std::collections::btree_map::Entry::Vacant(slot) = self.codes.entry(parity) {
            slot.insert(ReedSolomon::new(self.field.clone(), self.data_len, parity)?);
        }
        Ok(&self.codes[&parity])
    }

    /// The cached member at `parity`, if it was built.
    pub fn get(&self, parity: usize) -> Option<&ReedSolomon> {
        self.codes.get(&parity)
    }

    /// The family's field.
    pub fn field(&self) -> &Field {
        &self.field
    }

    /// Data symbols per codeword, shared by every member.
    pub fn data_len(&self) -> usize {
        self.data_len
    }

    /// The largest parity length the field permits for this data length.
    pub fn max_parity(&self) -> usize {
        self.field.group_order() - self.data_len
    }

    /// The built parity lengths, ascending.
    pub fn rates(&self) -> Vec<usize> {
        self.codes.keys().copied().collect()
    }

    /// Number of distinct rates built so far.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether no rate has been built yet.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RsScratch;

    #[test]
    fn rejects_degenerate_data_lengths() {
        assert!(matches!(
            CodeFamily::new(Field::gf16(), 0),
            Err(RsError::InvalidParams { .. })
        ));
        // data_len 15 leaves no room for parity in GF(16).
        assert!(CodeFamily::new(Field::gf16(), 15).is_err());
        assert!(CodeFamily::new(Field::gf16(), 14).is_ok());
    }

    #[test]
    fn with_rates_builds_each_distinct_rate_once() {
        let family = CodeFamily::with_rates(Field::gf16(), 8, [2, 4, 2, 0, 4]).unwrap();
        assert_eq!(family.rates(), vec![2, 4]);
        assert_eq!(family.len(), 2);
        assert_eq!(family.get(2).unwrap().parity_len(), 2);
        assert!(family.get(3).is_none());
        assert!(family.get(0).is_none());
    }

    #[test]
    fn rates_past_the_field_limit_are_rejected() {
        assert!(CodeFamily::with_rates(Field::gf16(), 8, [8]).is_err()); // 16 > 15
        let mut family = CodeFamily::new(Field::gf16(), 8).unwrap();
        assert_eq!(family.max_parity(), 7);
        assert!(family.ensure(7).is_ok());
        assert!(family.ensure(8).is_err());
        assert!(family.ensure(0).is_err());
    }

    #[test]
    fn members_match_standalone_codes() {
        let family = CodeFamily::with_rates(Field::gf256(), 12, [4, 8]).unwrap();
        let standalone = ReedSolomon::new(Field::gf256(), 12, 8).unwrap();
        let data: Vec<u16> = (0..12).map(|i| (i * 31 % 256) as u16).collect();
        assert_eq!(
            family.get(8).unwrap().encode(&data).unwrap(),
            standalone.encode(&data).unwrap()
        );
    }

    #[test]
    fn family_codes_share_one_scratch() {
        // One RsScratch serves every rate in the family, in any order,
        // with results identical to fresh-scratch decodes.
        let family = CodeFamily::with_rates(Field::gf256(), 20, [4, 10, 24]).unwrap();
        let data: Vec<u16> = (0..20).map(|i| (i * 7 % 256) as u16).collect();
        let mut shared = RsScratch::new();
        for &parity in &[24usize, 4, 10, 24, 4] {
            let rs = family.get(parity).unwrap();
            let mut cw = rs.encode(&data).unwrap();
            cw[3] ^= 0x41; // one error: correctable at every rate here
            cw[7] ^= 0x17; // second error only when parity ≥ 4 allows it
            let mut fresh_cw = cw.clone();
            let fixed = rs
                .decode_with_scratch(&mut cw, &[], &mut shared)
                .expect("within capacity");
            let fresh = rs
                .decode_with_scratch(&mut fresh_cw, &[], &mut RsScratch::new())
                .expect("within capacity");
            assert_eq!(fixed, fresh, "parity {parity}");
            assert_eq!(cw, fresh_cw, "parity {parity}");
            assert_eq!(&cw[..20], &data[..], "parity {parity}");
        }
    }
}
