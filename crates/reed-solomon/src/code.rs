//! The [`ReedSolomon`] code object: parameters, generator polynomial, and
//! the systematic encoder. Decoding lives in [`crate::decoder`].

use crate::decoder;
use crate::scratch::RsScratch;
use crate::RsError;
use dna_gf::{Field, MulTable};
use std::cell::RefCell;
use std::sync::Arc;

/// A systematic, possibly shortened Reed–Solomon code over GF(2^m).
///
/// The codeword layout is `[data … | parity …]`; `data_len + parity_len`
/// must not exceed the field's maximum codeword length `2^m − 1`. The
/// generator polynomial uses consecutive roots `α^1 … α^E` (fcr = 1).
///
/// # Examples
///
/// ```
/// use dna_gf::Field;
/// use dna_reed_solomon::ReedSolomon;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let rs = ReedSolomon::new(Field::gf16(), 11, 4)?; // RS(15, 11) over GF(16)
/// let cw = rs.encode(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11])?;
/// assert_eq!(cw.len(), 15);
/// assert!(rs.is_codeword(&cw));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    field: Field,
    data_len: usize,
    parity_len: usize,
    /// Generator polynomial in **descending** degree order; `gen_desc[0] = 1`
    /// is the coefficient of `x^E`.
    gen_desc: Vec<u16>,
    /// Precomputed hot-path kernels, shared across clones.
    tables: Arc<RsTables>,
}

/// The per-code constant-multiplication tables: the encoder LFSR's tap
/// products and one [`MulTable`] per syndrome root `α^1…α^E` (the
/// decoder's Horner kernel). Built once at construction; `Arc`-shared so
/// cloning a code stays cheap.
#[derive(Debug)]
struct RsTables {
    /// Per-generator-coefficient product tables, transposed and flattened
    /// so one feedback value reads one contiguous row:
    /// `gen_flat[coef·E + j] = gen_desc[j+1] · coef`. A whole LFSR step
    /// then touches two cache lines instead of `E` scattered tables.
    gen_flat: Vec<u16>,
    /// `roots[j]` multiplies by `α^{j+1}`.
    roots: Vec<MulTable>,
}

/// A report of what [`ReedSolomon::decode`] corrected.
///
/// Positions that were declared as erasures but turned out to hold the
/// correct symbol contribute to neither counter.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Correction {
    /// Number of corrected symbol errors at positions *not* declared erased.
    pub errors: usize,
    /// Number of erased positions whose symbol actually needed a fix.
    pub erasures: usize,
    /// The corrected positions (both kinds), in ascending order.
    pub positions: Vec<usize>,
}

impl Correction {
    /// Total number of symbols that were modified.
    pub fn corrected_symbols(&self) -> usize {
        self.errors + self.erasures
    }
}

impl ReedSolomon {
    /// Creates an RS code with `data_len` data symbols and `parity_len`
    /// parity symbols per codeword.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::InvalidParams`] when either length is zero or the
    /// total exceeds `2^m − 1`.
    pub fn new(field: Field, data_len: usize, parity_len: usize) -> Result<Self, RsError> {
        let max_len = field.group_order();
        if data_len == 0 || parity_len == 0 || data_len + parity_len > max_len {
            return Err(RsError::InvalidParams {
                data_len,
                parity_len,
                max_len,
            });
        }
        // g(x) = Π_{j=1..E} (x − α^j), built ascending then reversed.
        let mut gen = vec![1u16]; // ascending: constant term first
        for j in 1..=parity_len {
            let root = field.alpha_pow(j as i64);
            // multiply gen by (x + root): ascending conv with [root, 1]
            let mut next = vec![0u16; gen.len() + 1];
            for (i, &g) in gen.iter().enumerate() {
                next[i] ^= field.mul(g, root);
                next[i + 1] ^= g;
            }
            gen = next;
        }
        gen.reverse(); // descending: x^E coefficient (=1) first
        debug_assert_eq!(gen[0], 1);
        let mut gen_flat = vec![0u16; field.order() * parity_len];
        for coef in 0..field.order() {
            let row = &mut gen_flat[coef * parity_len..][..parity_len];
            for (slot, &g) in row.iter_mut().zip(&gen[1..]) {
                *slot = field.mul(g, coef as u16);
            }
        }
        let tables = RsTables {
            gen_flat,
            roots: (1..=parity_len)
                .map(|j| field.mul_table(field.alpha_pow(j as i64)))
                .collect(),
        };
        Ok(ReedSolomon {
            field,
            data_len,
            parity_len,
            gen_desc: gen,
            tables: Arc::new(tables),
        })
    }

    /// The field this code operates over.
    pub fn field(&self) -> &Field {
        &self.field
    }

    /// Number of data symbols per codeword (`M` in the paper's notation).
    pub fn data_len(&self) -> usize {
        self.data_len
    }

    /// Number of parity symbols per codeword (`E` in the paper's notation).
    pub fn parity_len(&self) -> usize {
        self.parity_len
    }

    /// Total codeword length `M + E`.
    pub fn codeword_len(&self) -> usize {
        self.data_len + self.parity_len
    }

    /// The generator polynomial `g(x) = Π_{j=1..E} (x − α^j)` in
    /// **descending** degree order (the leading `x^E` coefficient, always
    /// 1, comes first).
    pub fn generator(&self) -> &[u16] {
        &self.gen_desc
    }

    /// Encodes `data` into a fresh systematic codeword `[data | parity]`.
    ///
    /// # Errors
    ///
    /// Returns [`RsError::LengthMismatch`] for wrong input length and
    /// [`RsError::SymbolOutOfRange`] when a symbol exceeds the field.
    pub fn encode(&self, data: &[u16]) -> Result<Vec<u16>, RsError> {
        if data.len() != self.data_len {
            return Err(RsError::LengthMismatch {
                expected: self.data_len,
                actual: data.len(),
            });
        }
        let mut cw = Vec::with_capacity(self.codeword_len());
        cw.extend_from_slice(data);
        cw.resize(self.codeword_len(), 0);
        self.fill_parity(&mut cw)?;
        Ok(cw)
    }

    /// Computes parity in place for a buffer whose first `data_len` symbols
    /// are the data; the trailing `parity_len` symbols are overwritten.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ReedSolomon::encode`].
    pub fn fill_parity(&self, codeword: &mut [u16]) -> Result<(), RsError> {
        if codeword.len() != self.codeword_len() {
            return Err(RsError::LengthMismatch {
                expected: self.codeword_len(),
                actual: codeword.len(),
            });
        }
        let order = self.field.order() as u32;
        if let Some(bad) = codeword[..self.data_len]
            .iter()
            .position(|&s| u32::from(s) >= order)
        {
            return Err(RsError::SymbolOutOfRange {
                index: bad,
                value: codeword[bad],
            });
        }
        let e = self.parity_len;
        // Polynomial long division as an LFSR over the per-coefficient tap
        // products, running directly in the codeword's parity region:
        // parity = data(x)·x^E mod g(x). Each step reads one contiguous
        // `gen_flat` row, shifts the register, and XORs the row in — no
        // allocation, no zero-branches, no per-element table dispatch.
        let (data, rem) = codeword.split_at_mut(self.data_len);
        rem.fill(0);
        let flat = &self.tables.gen_flat;
        for &data_sym in data.iter() {
            let coef = usize::from(data_sym ^ rem[0]);
            let row = &flat[coef * e..][..e];
            rem.copy_within(1.., 0);
            rem[e - 1] = 0;
            for (r, &tap) in rem.iter_mut().zip(row) {
                *r ^= tap;
            }
        }
        Ok(())
    }

    /// Computes the `E` syndromes `S_j = r(α^j)`, `j = 1..=E`, into `out`
    /// via the batched multi-root Horner kernel ([`dna_gf::horner_eval_block`]):
    /// one streaming pass over `received` per register block of up to 8
    /// roots, instead of `E` independent passes. `DNA_SKEW_SIMD=scalar`
    /// forces the per-root reference; results are identical either way.
    pub fn syndromes_into(&self, received: &[u16], out: &mut Vec<u16>) {
        dna_gf::horner_eval_block(&self.tables.roots, received, out);
    }

    /// Whether every syndrome of `word` vanishes; exits at the first
    /// non-zero syndrome (block of syndromes under batched dispatch).
    pub(crate) fn syndromes_vanish(&self, word: &[u16]) -> bool {
        dna_gf::horner_all_zero(&self.tables.roots, word)
    }

    /// Returns `true` when all syndromes of `word` vanish (i.e. `word` is a
    /// valid codeword of this code). Wrong-length input returns `false`.
    pub fn is_codeword(&self, word: &[u16]) -> bool {
        word.len() == self.codeword_len() && self.syndromes_vanish(word)
    }

    /// Corrects `received` in place, treating `erasures` (positions within
    /// the codeword) as known-bad locations.
    ///
    /// On success the buffer holds the corrected codeword and the returned
    /// [`Correction`] describes what changed. On failure the buffer is left
    /// **unmodified** so callers can fall back to best-effort data recovery
    /// (as the paper's graceful-degradation experiments require).
    ///
    /// # Errors
    ///
    /// - [`RsError::LengthMismatch`] / [`RsError::SymbolOutOfRange`] /
    ///   [`RsError::BadErasure`] for malformed input;
    /// - [`RsError::TooManyErasures`] when `erasures.len() > parity_len`;
    /// - [`RsError::TooManyErrors`] when the noise exceeds `2ν + ρ ≤ E`.
    ///
    /// Internally this borrows a per-thread [`RsScratch`], so steady-state
    /// decoding performs no heap allocations beyond the returned
    /// [`Correction`]'s position list; batch callers that want explicit
    /// control use [`ReedSolomon::decode_with_scratch`].
    pub fn decode(&self, received: &mut [u16], erasures: &[usize]) -> Result<Correction, RsError> {
        thread_local! {
            static SCRATCH: RefCell<RsScratch> = RefCell::new(RsScratch::new());
        }
        SCRATCH
            .with(|s| decoder::decode_with_scratch(self, received, erasures, &mut s.borrow_mut()))
    }

    /// [`ReedSolomon::decode`] against a caller-owned [`RsScratch`]: after
    /// the scratch's first use, decoding allocates nothing. Results are
    /// byte-identical to [`ReedSolomon::decode`] regardless of what the
    /// scratch was previously used for.
    ///
    /// # Errors
    ///
    /// See [`ReedSolomon::decode`].
    pub fn decode_with_scratch(
        &self,
        received: &mut [u16],
        erasures: &[usize],
        scratch: &mut RsScratch,
    ) -> Result<Correction, RsError> {
        decoder::decode_with_scratch(self, received, erasures, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dna_gf::poly;

    fn rs_small() -> ReedSolomon {
        ReedSolomon::new(Field::gf16(), 9, 6).expect("valid params")
    }

    #[test]
    fn rejects_bad_geometry() {
        assert!(matches!(
            ReedSolomon::new(Field::gf16(), 0, 4),
            Err(RsError::InvalidParams { .. })
        ));
        assert!(matches!(
            ReedSolomon::new(Field::gf16(), 12, 4), // 16 > 15
            Err(RsError::InvalidParams { .. })
        ));
        assert!(ReedSolomon::new(Field::gf16(), 11, 4).is_ok());
    }

    #[test]
    fn generator_has_roots_at_consecutive_alpha_powers() {
        let rs = rs_small();
        let f = rs.field().clone();
        let mut gen_asc = rs.gen_desc.clone();
        gen_asc.reverse();
        for j in 1..=rs.parity_len() {
            assert_eq!(
                poly::eval(&f, &gen_asc, f.alpha_pow(j as i64)),
                0,
                "root α^{j}"
            );
        }
        // α^0 = 1 must NOT be a root (fcr = 1).
        assert_ne!(poly::eval(&f, &gen_asc, 1), 0);
    }

    #[test]
    fn encode_is_systematic_and_valid() {
        let rs = rs_small();
        let data = [3u16, 1, 4, 1, 5, 9, 2, 6, 5];
        let cw = rs.encode(&data).unwrap();
        assert_eq!(&cw[..9], &data);
        assert!(rs.is_codeword(&cw));
    }

    #[test]
    fn encode_rejects_bad_inputs() {
        let rs = rs_small();
        assert!(matches!(
            rs.encode(&[1, 2, 3]),
            Err(RsError::LengthMismatch {
                expected: 9,
                actual: 3
            })
        ));
        assert!(matches!(
            rs.encode(&[99, 0, 0, 0, 0, 0, 0, 0, 0]), // 99 ≥ 16
            Err(RsError::SymbolOutOfRange {
                index: 0,
                value: 99
            })
        ));
    }

    #[test]
    fn is_codeword_rejects_corruption_and_wrong_length() {
        let rs = rs_small();
        let mut cw = rs.encode(&[0; 9]).unwrap();
        assert!(rs.is_codeword(&cw));
        cw[4] ^= 1;
        assert!(!rs.is_codeword(&cw));
        assert!(!rs.is_codeword(&cw[..10]));
    }

    #[test]
    fn codeword_of_gf256_code_checks_out() {
        let rs = ReedSolomon::new(Field::gf256(), 200, 55).unwrap();
        let data: Vec<u16> = (0..200).map(|i| (i * 37 % 256) as u16).collect();
        let cw = rs.encode(&data).unwrap();
        assert!(rs.is_codeword(&cw));
        assert_eq!(rs.codeword_len(), 255);
    }
}
