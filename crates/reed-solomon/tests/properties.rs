//! Property-based tests: Reed–Solomon round-trips under every noise pattern
//! within the code's correction capability.

use dna_gf::Field;
use dna_reed_solomon::{ReedSolomon, RsError, RsScratch};
use proptest::prelude::*;

/// Geometry + payload + a noise plan that respects `2ν + ρ ≤ E`.
#[derive(Debug, Clone)]
struct Scenario {
    data_len: usize,
    parity_len: usize,
    data: Vec<u16>,
    /// (position, xor-mask≠0) pairs for in-place errors, distinct positions.
    errors: Vec<(usize, u16)>,
    /// Distinct erased positions (disjoint from error positions).
    erasures: Vec<usize>,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (2usize..40, 2usize..24)
        .prop_flat_map(|(data_len, parity_len)| {
            let cw_len = data_len + parity_len;
            let data = proptest::collection::vec(0u16..256, data_len);
            // Choose ρ ≤ E, then ν ≤ (E−ρ)/2.
            let plan = (0..=parity_len).prop_flat_map(move |rho| {
                let max_nu = (parity_len - rho) / 2;
                (Just(rho), 0..=max_nu)
            });
            (Just(data_len), Just(parity_len), data, plan, Just(cw_len))
        })
        .prop_flat_map(|(data_len, parity_len, data, (rho, nu), cw_len)| {
            // Pick rho+nu distinct positions via a shuffled index vector.
            let positions = Just((0..cw_len).collect::<Vec<usize>>()).prop_shuffle();
            let masks = proptest::collection::vec(1u16..256, nu);
            (
                Just(data_len),
                Just(parity_len),
                Just(data),
                positions,
                masks,
                Just(rho),
            )
        })
        .prop_map(|(data_len, parity_len, data, positions, masks, rho)| {
            let erasures = positions[..rho].to_vec();
            let errors = positions[rho..rho + masks.len()]
                .iter()
                .copied()
                .zip(masks)
                .collect();
            Scenario {
                data_len,
                parity_len,
                data,
                errors,
                erasures,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn decodes_any_pattern_within_capacity(s in scenario()) {
        let rs = ReedSolomon::new(Field::gf256(), s.data_len, s.parity_len).unwrap();
        let clean = rs.encode(&s.data).unwrap();
        let mut cw = clean.clone();
        for &(pos, mask) in &s.errors {
            cw[pos] ^= mask;
        }
        for &pos in &s.erasures {
            cw[pos] = 0;
        }
        let c = rs.decode(&mut cw, &s.erasures).unwrap();
        prop_assert_eq!(&cw, &clean);
        prop_assert_eq!(c.errors, s.errors.len());
    }

    #[test]
    fn encode_then_check_always_valid(
        data in proptest::collection::vec(0u16..256, 1..60),
        parity in 1usize..30,
    ) {
        prop_assume!(data.len() + parity <= 255);
        let rs = ReedSolomon::new(Field::gf256(), data.len(), parity).unwrap();
        let cw = rs.encode(&data).unwrap();
        prop_assert!(rs.is_codeword(&cw));
        prop_assert_eq!(&cw[..data.len()], &data[..]);
    }

    #[test]
    fn scratch_decode_is_byte_identical_even_after_poisoning(s in scenario()) {
        let rs = ReedSolomon::new(Field::gf256(), s.data_len, s.parity_len).unwrap();
        let clean = rs.encode(&s.data).unwrap();
        let mut noisy = clean.clone();
        for &(pos, mask) in &s.errors {
            noisy[pos] ^= mask;
        }
        for &pos in &s.erasures {
            noisy[pos] = 0;
        }
        // Reference: the plain API (itself scratch-backed per thread).
        let mut reference_cw = noisy.clone();
        let reference = rs.decode(&mut reference_cw, &s.erasures);
        // Candidate: an explicit scratch poisoned by a failed decode of a
        // hopeless word first — no state may leak into the real decode.
        let mut scratch = RsScratch::new();
        let mut hopeless: Vec<u16> = (0..rs.codeword_len() as u16).map(|i| i.wrapping_mul(37) % 251).collect();
        let _ = rs.decode_with_scratch(&mut hopeless, &[0, 2, 4], &mut scratch);
        let mut scratch_cw = noisy.clone();
        let got = rs.decode_with_scratch(&mut scratch_cw, &s.erasures, &mut scratch);
        prop_assert_eq!(reference, got);
        prop_assert_eq!(reference_cw, scratch_cw);
    }

    #[test]
    fn decode_and_syndromes_identical_across_dispatch_modes(s in scenario()) {
        use dna_gf::dispatch::{self, SimdMode};
        let rs = ReedSolomon::new(Field::gf256(), s.data_len, s.parity_len).unwrap();
        let clean = rs.encode(&s.data).unwrap();
        let mut noisy = clean.clone();
        for &(pos, mask) in &s.errors {
            noisy[pos] ^= mask;
        }
        for &pos in &s.erasures {
            noisy[pos] = 0;
        }
        dispatch::force_mode(Some(SimdMode::Scalar));
        let mut synd_scalar = Vec::new();
        rs.syndromes_into(&noisy, &mut synd_scalar);
        let clean_scalar = rs.is_codeword(&noisy);
        let mut cw_scalar = noisy.clone();
        let res_scalar = rs.decode(&mut cw_scalar, &s.erasures);
        dispatch::force_mode(Some(SimdMode::Auto));
        let mut synd_auto = Vec::new();
        rs.syndromes_into(&noisy, &mut synd_auto);
        let clean_auto = rs.is_codeword(&noisy);
        let mut cw_auto = noisy.clone();
        let res_auto = rs.decode(&mut cw_auto, &s.erasures);
        dispatch::force_mode(None);
        prop_assert_eq!(synd_scalar, synd_auto);
        prop_assert_eq!(clean_scalar, clean_auto);
        prop_assert_eq!(res_scalar, res_auto);
        prop_assert_eq!(cw_scalar, cw_auto);
    }

    #[test]
    fn failed_decode_never_mutates(
        data in proptest::collection::vec(0u16..256, 8..20),
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let rs = ReedSolomon::new(Field::gf256(), data.len(), 4).unwrap();
        let clean = rs.encode(&data).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut cw = clean.clone();
        // Far beyond capacity: corrupt half of the codeword.
        let cw_len = cw.len();
        for i in 0..cw_len / 2 {
            cw[i * 2] ^= rng.gen_range(1..256) as u16;
        }
        let snapshot = cw.clone();
        match rs.decode(&mut cw, &[]) {
            Err(RsError::TooManyErrors) => prop_assert_eq!(cw, snapshot),
            Ok(_) => prop_assert!(rs.is_codeword(&cw)), // bounded-distance miscorrect
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error {e}"))),
        }
    }
}

/// The GF(65536) equivalent of the byte-identity property, with a plain
/// seeded loop so the (expensive) full-scale field and its tables are
/// built once rather than per proptest case.
#[test]
fn gf65536_scratch_decode_is_byte_identical() {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let rs = ReedSolomon::new(Field::gf65536(), 50, 14).unwrap();
    let mut rng = StdRng::seed_from_u64(99);
    let mut scratch = RsScratch::new();
    for trial in 0..40 {
        let data: Vec<u16> = (0..50).map(|_| rng.gen_range(0..=u16::MAX)).collect();
        let clean = rs.encode(&data).unwrap();
        let mut noisy = clean.clone();
        // ρ erasures + ν errors with 2ν + ρ up to (and 25% beyond) E.
        let rho = rng.gen_range(0..=8usize);
        let nu = rng.gen_range(0..=4usize);
        let mut positions: Vec<usize> = (0..rs.codeword_len()).collect();
        for k in 0..rho + nu {
            let j = rng.gen_range(k..positions.len());
            positions.swap(k, j);
        }
        let erasures: Vec<usize> = positions[..rho].to_vec();
        for &p in &erasures {
            noisy[p] = rng.gen_range(0..=u16::MAX);
        }
        for &p in &positions[rho..rho + nu] {
            noisy[p] ^= rng.gen_range(1..=u16::MAX);
        }
        let mut reference_cw = noisy.clone();
        let reference = rs.decode(&mut reference_cw, &erasures);
        let mut scratch_cw = noisy.clone();
        let got = rs.decode_with_scratch(&mut scratch_cw, &erasures, &mut scratch);
        assert_eq!(reference, got, "trial {trial}");
        assert_eq!(reference_cw, scratch_cw, "trial {trial}");
        // Poison the shared scratch before the next trial.
        let mut junk: Vec<u16> = (0..rs.codeword_len())
            .map(|_| rng.gen_range(0..=u16::MAX))
            .collect();
        let _ = rs.decode_with_scratch(&mut junk, &[1, 3, 5], &mut scratch);
    }
}
