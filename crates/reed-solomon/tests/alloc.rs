//! Counting-allocator proof of the zero-allocation decode contract:
//! steady-state `decode_with_scratch` (and the scratch-backed `decode`)
//! perform **no heap allocations** — the only exception being the
//! `positions` vector of a returned `Correction` that actually fixed
//! symbols, which is user-facing output, not scratch.
//!
//! Every assertion runs under both `DNA_SKEW_SIMD` dispatch modes: the
//! SIMD/batched kernels must add zero steady-state allocations.

use dna_gf::dispatch::{self, SimdMode};
use dna_gf::Field;
use dna_reed_solomon::{ReedSolomon, RsScratch};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// Wraps the system allocator, counting allocations per thread.
struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: delegates every operation to `System`; the bookkeeping uses a
// const-initialized `Cell<u64>` thread-local (no lazy allocation, no
// destructor), so the allocator never re-enters itself.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Allocations made by `f` on this thread.
fn allocations_in<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCS.with(Cell::get);
    let out = f();
    (ALLOCS.with(Cell::get) - before, out)
}

/// Runs `f` under forced-scalar and forced-auto dispatch in turn, so the
/// zero-allocation contract is proved for both kernel arms.
fn in_both_modes(mut f: impl FnMut(SimdMode)) {
    for mode in [SimdMode::Scalar, SimdMode::Auto] {
        dispatch::force_mode(Some(mode));
        f(mode);
    }
    dispatch::force_mode(None);
}

#[test]
fn steady_state_scratch_decode_allocates_nothing() {
    in_both_modes(steady_state_scratch_decode_case);
}

fn steady_state_scratch_decode_case(mode: SimdMode) {
    let rs = ReedSolomon::new(Field::gf256(), 40, 16).unwrap();
    let data: Vec<u16> = (0..40).map(|i| (i * 7) % 256).collect();
    let clean = rs.encode(&data).unwrap();
    let mut scratch = RsScratch::new();

    // Warm up: pre-size every buffer, then run one corrected and one
    // failing decode so every code path has touched its scratch.
    scratch.warm_up(&rs);
    let mut cw = clean.clone();
    cw[3] ^= 0x5A;
    cw[20] ^= 0x11;
    rs.decode_with_scratch(&mut cw, &[7], &mut scratch).unwrap();
    let mut junk: Vec<u16> = (0..rs.codeword_len() as u16).map(|i| i % 249).collect();
    let _ = rs.decode_with_scratch(&mut junk, &[], &mut scratch);

    // Clean codeword: zero allocations end to end.
    let mut cw = clean.clone();
    let erasures = [7usize, 12];
    let (n, result) = allocations_in(|| rs.decode_with_scratch(&mut cw, &erasures, &mut scratch));
    result.unwrap();
    assert_eq!(
        n, 0,
        "clean steady-state decode must not allocate ({mode:?})"
    );

    // Errors + erasures: the only allocation is the returned Correction's
    // positions vector (user-facing output, unavoidable by signature).
    let mut cw = clean.clone();
    cw[5] ^= 0x33;
    cw[30] ^= 0x44;
    let (n, result) = allocations_in(|| rs.decode_with_scratch(&mut cw, &[], &mut scratch));
    let correction = result.unwrap();
    assert_eq!(correction.errors, 2);
    assert_eq!(cw, clean);
    assert!(
        n <= 1,
        "corrected decode may only allocate the Correction position list, saw {n} ({mode:?})"
    );

    // A failing decode allocates nothing either.
    let mut junk: Vec<u16> = (0..rs.codeword_len() as u16).map(|i| i % 251).collect();
    let (n, result) = allocations_in(|| rs.decode_with_scratch(&mut junk, &[], &mut scratch));
    assert!(result.is_err());
    assert_eq!(n, 0, "failed decode must not allocate ({mode:?})");
}

#[test]
fn plain_decode_reuses_its_thread_local_scratch() {
    let rs = ReedSolomon::new(Field::gf256(), 30, 12).unwrap();
    let data: Vec<u16> = (0..30).map(|i| (i * 11) % 256).collect();
    let clean = rs.encode(&data).unwrap();

    // Warm the thread-local scratch.
    let mut cw = clean.clone();
    cw[2] ^= 1;
    rs.decode(&mut cw, &[4]).unwrap();

    let mut cw = clean.clone();
    let (n, result) = allocations_in(|| rs.decode(&mut cw, &[]));
    result.unwrap();
    assert_eq!(
        n, 0,
        "warm thread-local decode of a clean word must not allocate"
    );
}

#[test]
fn warm_up_presizes_a_cold_scratch() {
    let rs = ReedSolomon::new(Field::gf256(), 40, 16).unwrap();
    let data: Vec<u16> = (0..40).collect();
    let clean = rs.encode(&data).unwrap();
    let mut scratch = RsScratch::new();
    scratch.warm_up(&rs);
    // Even the *first* decode through an explicitly warmed scratch stays
    // allocation-free on the clean path.
    let mut cw = clean.clone();
    let (n, result) = allocations_in(|| rs.decode_with_scratch(&mut cw, &[], &mut scratch));
    result.unwrap();
    assert_eq!(n, 0, "warmed-up first decode must not allocate");
}
