//! Boundary tests for the errors-and-erasures decoder: behavior at
//! exactly the erasure capacity `n − k`, one past it, and scratch/plain
//! equivalence under burst-shaped corruption — the symbol-level footprint
//! of the channel crate's new [`dna_channel::BurstModel`] (a surviving
//! burst misaligns consensus around it, which reaches the RS layer as a
//! contiguous run of symbol errors).

use dna_channel::{ChannelModel, ErrorModel};
use dna_gf::Field;
use dna_reed_solomon::{ReedSolomon, RsError, RsScratch};
use dna_strand::DnaString;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn patterned_data(n: usize, field_max: u16) -> Vec<u16> {
    (0..n as u32)
        .map(|i| ((i * 37 + 5) % (field_max as u32 + 1)) as u16)
        .collect()
}

/// Largest symbol value of the code's field.
fn max_sym(rs: &ReedSolomon) -> u16 {
    (rs.field().order() - 1) as u16
}

/// The codes the boundary matrix runs over: the tiny-geometry code, the
/// laptop-geometry code's shape, and a GF(2^16) code.
fn codes() -> Vec<ReedSolomon> {
    vec![
        ReedSolomon::new(Field::gf16(), 10, 5).unwrap(),
        ReedSolomon::new(Field::gf256(), 40, 20).unwrap(),
        ReedSolomon::new(Field::gf65536(), 30, 8).unwrap(),
    ]
}

#[test]
fn decode_at_exactly_n_minus_k_erasures_succeeds() {
    for rs in codes() {
        let (n, k) = (rs.codeword_len(), rs.data_len());
        let e = n - k;
        let clean = rs.encode(&patterned_data(k, max_sym(&rs))).unwrap();
        // Three erasure geometries: a leading block, a trailing block, and
        // a contiguous mid-codeword burst — all exactly at capacity.
        let patterns: [Vec<usize>; 3] = [
            (0..e).collect(),
            (n - e..n).collect(),
            (k / 2..k / 2 + e).collect(),
        ];
        for erasures in patterns {
            let mut cw = clean.clone();
            for &p in &erasures {
                cw[p] ^= 1; // wrong symbol at every erased slot
            }
            let correction = rs
                .decode(&mut cw, &erasures)
                .unwrap_or_else(|err| panic!("decode at exactly {e} erasures must succeed: {err}"));
            assert_eq!(cw, clean, "codeword not restored at capacity");
            assert_eq!(correction.erasures, e, "all erased slots needed fixing");
            assert_eq!(correction.errors, 0);
        }
    }
}

#[test]
fn decode_at_n_minus_k_plus_one_erasures_fails_cleanly() {
    for rs in codes() {
        let (n, k) = (rs.codeword_len(), rs.data_len());
        let e = n - k;
        let clean = rs.encode(&patterned_data(k, max_sym(&rs))).unwrap();
        let erasures: Vec<usize> = (0..=e).collect(); // one beyond capacity
        let mut cw = clean.clone();
        for &p in &erasures {
            cw[p] ^= 1;
        }
        let snapshot = cw.clone();
        let err = rs.decode(&mut cw, &erasures).unwrap_err();
        assert_eq!(
            err,
            RsError::TooManyErasures {
                erasures: e + 1,
                capacity: e
            },
            "failure must be the typed over-capacity error"
        );
        assert_eq!(cw, snapshot, "failed decode must not mutate the word");

        // The scratch path fails identically — and the same scratch then
        // still decodes a within-capacity word correctly (clean failure,
        // no latent state).
        let mut scratch = RsScratch::new();
        let mut cw2 = snapshot.clone();
        assert_eq!(
            rs.decode_with_scratch(&mut cw2, &erasures, &mut scratch),
            Err(err)
        );
        assert_eq!(cw2, snapshot);
        let within: Vec<usize> = (0..e).collect();
        let mut cw3 = clean.clone();
        for &p in &within {
            cw3[p] ^= 1;
        }
        rs.decode_with_scratch(&mut cw3, &within, &mut scratch)
            .expect("scratch must be reusable after a clean failure");
        assert_eq!(cw3, clean);
    }
}

/// Burst lengths drawn from the real channel-level burst model: transmit
/// an otherwise noiseless strand through an always-burst channel and read
/// the burst size off the length change.
fn channel_burst_lengths(count: usize, mean_len: f64, seed: u64) -> Vec<usize> {
    let model = ChannelModel::uniform(ErrorModel::noiseless())
        .with_burst(1.0, mean_len)
        .unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let strand = DnaString::random(400, &mut rng);
    (0..count)
        .map(|_| {
            model
                .transmit(&strand, &mut rng)
                .len()
                .abs_diff(strand.len())
                .max(1)
        })
        .collect()
}

#[test]
fn poisoned_scratch_matches_plain_decode_under_bursty_corruption() {
    let rs = ReedSolomon::new(Field::gf256(), 40, 20).unwrap();
    let (n, k) = (rs.codeword_len(), rs.data_len());
    let clean = rs.encode(&patterned_data(k, max_sym(&rs))).unwrap();
    let bursts = channel_burst_lengths(60, 5.0, 0xB0B);
    let mut rng = StdRng::seed_from_u64(0xD1CE);
    for (case, &burst_len) in bursts.iter().enumerate() {
        // A contiguous burst of symbol errors (possibly beyond the error
        // capacity) plus a few declared erasures elsewhere.
        let start = rng.gen_range(0..n);
        let mut noisy = clean.clone();
        for off in 0..burst_len.min(n) {
            let p = (start + off) % n;
            noisy[p] ^= rng.gen_range(1..=max_sym(&rs));
        }
        let n_erasures = rng.gen_range(0..4);
        let erasures: Vec<usize> = (0..n_erasures)
            .map(|i| (start + n - 2 - 3 * i) % n)
            .collect();
        for &p in &erasures {
            noisy[p] = 0;
        }

        // Reference: the plain API (per-thread scratch).
        let mut plain_cw = noisy.clone();
        let plain = rs.decode(&mut plain_cw, &erasures);

        // Candidate: a scratch poisoned by a failed decode of garbage.
        let mut scratch = RsScratch::new();
        let mut garbage: Vec<u16> = (0..n as u16).map(|i| i.wrapping_mul(97) % 251).collect();
        let _ = rs.decode_with_scratch(&mut garbage, &[1, 3, 5, 7], &mut scratch);
        let mut scratch_cw = noisy.clone();
        let got = rs.decode_with_scratch(&mut scratch_cw, &erasures, &mut scratch);

        assert_eq!(plain, got, "case {case}: results diverged");
        assert_eq!(plain_cw, scratch_cw, "case {case}: codewords diverged");
        // Within capacity (2ν + ρ ≤ E) the burst must actually be fixed.
        if 2 * burst_len + erasures.len() <= n - k && plain.is_ok() {
            assert_eq!(
                plain_cw, clean,
                "case {case}: in-capacity burst not repaired"
            );
        }
    }
}
