//! Property-based tests: field axioms for GF(2^m).

use dna_gf::{poly, Field};
use proptest::prelude::*;

fn field_and_elems(max_elems: usize) -> impl Strategy<Value = (Field, Vec<u16>)> {
    (2u8..=12).prop_flat_map(move |m| {
        let f = Field::new(m).expect("supported width");
        let order = f.order() as u16;
        (Just(f), proptest::collection::vec(0..order, 3..max_elems))
    })
}

proptest! {
    #[test]
    fn addition_is_commutative_and_self_inverse((f, xs) in field_and_elems(8)) {
        let (a, b) = (xs[0], xs[1]);
        prop_assert_eq!(f.add(a, b), f.add(b, a));
        prop_assert_eq!(f.add(a, a), 0);
        prop_assert_eq!(f.sub(f.add(a, b), b), a);
    }

    #[test]
    fn multiplication_is_commutative_and_associative((f, xs) in field_and_elems(8)) {
        let (a, b, c) = (xs[0], xs[1], xs[2]);
        prop_assert_eq!(f.mul(a, b), f.mul(b, a));
        prop_assert_eq!(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
    }

    #[test]
    fn multiplication_distributes_over_addition((f, xs) in field_and_elems(8)) {
        let (a, b, c) = (xs[0], xs[1], xs[2]);
        prop_assert_eq!(f.mul(a, f.add(b, c)), f.add(f.mul(a, b), f.mul(a, c)));
    }

    #[test]
    fn nonzero_elements_have_inverses((f, xs) in field_and_elems(8)) {
        for &x in &xs {
            if x != 0 {
                let ix = f.inv(x).unwrap();
                prop_assert_eq!(f.mul(x, ix), 1);
                prop_assert_eq!(f.div(1, x).unwrap(), ix);
            }
        }
    }

    #[test]
    fn pow_is_repeated_multiplication((f, xs) in field_and_elems(4)) {
        let x = xs[0];
        let mut acc = 1u16;
        for e in 0..6i64 {
            prop_assert_eq!(f.pow(x, e).unwrap(), acc);
            acc = f.mul(acc, x);
        }
    }

    #[test]
    fn poly_mul_matches_eval_homomorphism(
        (f, xs) in field_and_elems(12),
        split in 1usize..8,
    ) {
        let split = split.min(xs.len() - 1);
        let (a, b) = xs.split_at(split);
        let prod = poly::mul(&f, a, b);
        for probe in 0..4u16 {
            let x = probe % f.order() as u16;
            prop_assert_eq!(
                poly::eval(&f, &prod, x),
                f.mul(poly::eval(&f, a, x), poly::eval(&f, b, x))
            );
        }
    }
}
