//! Dispatch-identity properties: every accelerated kernel must be
//! byte-identical to its scalar reference — over random inputs, both
//! fields (byte-wide GF(256) and wide GF(65536)), empty slices,
//! non-multiple-of-16 lengths, and the all-zeros / all-0xFF edges.

use dna_gf::dispatch::{Kernel, SimdMode};
use dna_gf::{horner_all_zero_in, horner_eval_block_in, Field, MulTable};
use proptest::prelude::*;

/// A field, a constant in it, and a random element vector whose length
/// sweeps past the 16-lane SIMD boundary (0..=67 covers empty, sub-lane,
/// exact-multiple, and ragged-tail lengths).
fn field_const_elems() -> impl Strategy<Value = (Field, u16, Vec<u16>)> {
    (0u8..2).prop_flat_map(|wide| {
        let f = if wide == 0 {
            Field::gf256()
        } else {
            Field::gf65536()
        };
        let max = (f.order() - 1) as u16;
        let c = 0..=max;
        let xs = proptest::collection::vec(0..=max, 0..=67);
        (Just(f), c, xs)
    })
}

/// Edge-case element vectors: all-zeros and all-0xFF at awkward lengths.
fn edge_vectors() -> impl Strategy<Value = Vec<u16>> {
    (0usize..=40, 0u8..2).prop_map(|(len, which)| vec![if which == 0 { 0u16 } else { 0xFF }; len])
}

proptest! {
    #[test]
    fn mul_slice_identical_across_kernels((f, c, xs) in field_const_elems()) {
        let t = f.mul_table(c);
        let mut scalar = xs.clone();
        let mut simd = xs.clone();
        t.mul_slice_in(Kernel::Scalar, &mut scalar);
        t.mul_slice_in(Kernel::Ssse3, &mut simd);
        prop_assert_eq!(&scalar, &simd);
        // The per-call-constant Field form must agree with the table form.
        let mut field_form = xs.clone();
        f.mul_slice(&mut field_form, c);
        prop_assert_eq!(&scalar, &field_form);
        for (&y, &x) in scalar.iter().zip(&xs) {
            prop_assert_eq!(y, f.mul(c, x));
        }
    }

    #[test]
    fn mul_add_slice_identical_across_kernels((f, c, xs) in field_const_elems()) {
        let t = f.mul_table(c);
        let acc0: Vec<u16> = xs.iter().rev().copied().collect();
        let (mut scalar, mut simd, mut field_form) = (acc0.clone(), acc0.clone(), acc0.clone());
        t.mul_add_slice_in(Kernel::Scalar, &mut scalar, &xs);
        t.mul_add_slice_in(Kernel::Ssse3, &mut simd, &xs);
        f.mul_add_slice(&mut field_form, &xs, c);
        prop_assert_eq!(&scalar, &simd);
        prop_assert_eq!(&scalar, &field_form);
        for ((&y, &a), &x) in scalar.iter().zip(&acc0).zip(&xs) {
            prop_assert_eq!(y, a ^ f.mul(c, x));
        }
    }

    #[test]
    fn blocked_syndromes_identical_to_per_root(
        (f, _, word) in field_const_elems(),
        n_roots in 0usize..=19,
    ) {
        let tables: Vec<MulTable> = (1..=n_roots as i64)
            .map(|j| f.mul_table(f.alpha_pow(j)))
            .collect();
        let mut scalar = Vec::new();
        let mut blocked = Vec::new();
        horner_eval_block_in(SimdMode::Scalar, &tables, &word, &mut scalar);
        horner_eval_block_in(SimdMode::Auto, &tables, &word, &mut blocked);
        prop_assert_eq!(&scalar, &blocked);
        let per_root: Vec<u16> = tables.iter().map(|t| t.horner_eval(&word)).collect();
        prop_assert_eq!(&scalar, &per_root);
        prop_assert_eq!(
            horner_all_zero_in(SimdMode::Auto, &tables, &word),
            horner_all_zero_in(SimdMode::Scalar, &tables, &word)
        );
        prop_assert_eq!(
            horner_all_zero_in(SimdMode::Auto, &tables, &word),
            per_root.iter().all(|&s| s == 0)
        );
    }

    #[test]
    fn edge_vectors_identical_across_kernels(xs in edge_vectors(), c in 0u16..=255) {
        let f = Field::gf256();
        let t = f.mul_table(c);
        let mut scalar = xs.clone();
        let mut simd = xs.clone();
        t.mul_slice_in(Kernel::Scalar, &mut scalar);
        t.mul_slice_in(Kernel::Ssse3, &mut simd);
        prop_assert_eq!(&scalar, &simd);
        let mut acc_s = vec![0u16; xs.len()];
        let mut acc_v = vec![0u16; xs.len()];
        t.mul_add_slice_in(Kernel::Scalar, &mut acc_s, &xs);
        t.mul_add_slice_in(Kernel::Ssse3, &mut acc_v, &xs);
        prop_assert_eq!(&acc_s, &acc_v);
    }
}
