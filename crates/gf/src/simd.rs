//! SSSE3 nibble-table slice kernels for byte-wide fields.
//!
//! A GF(2^m≤8) product by a fixed constant `c` splits over the nibbles of
//! the operand — multiplication is GF(2)-linear, so
//! `c·x = c·(x & 0x0F) ⊕ c·(x & 0xF0)` — which turns the 256-entry product
//! table into two 16-entry LUTs (`lo[n] = c·n`, `hi[n] = c·(n·16)`). Both
//! LUTs fit one `__m128i` each, and `_mm_shuffle_epi8` performs sixteen
//! simultaneous LUT loads, so one register pass multiplies 16 elements:
//! pack 16 `u16` lanes to bytes, shuffle each nibble through its LUT, XOR
//! the halves, and widen back to `u16`.
//!
//! Inputs must be field elements (`< 256`); that is the same contract the
//! scalar byte-table kernels enforce by construction, and the dispatched
//! results are bit-for-bit identical to them (see the dispatch-identity
//! proptests in `tests/dispatch_identity.rs`).
//!
//! This is the only module in the crate allowed to use `unsafe`: the
//! intrinsics require it, every pointer stays inside caller-provided
//! slices, and callers gate on runtime SSSE3 detection via
//! [`crate::dispatch::kernel`].

#![allow(unsafe_code)]

/// The two 16-entry half-nibble product LUTs for one constant over a
/// byte-wide field: `lo[n] = c·n` and `hi[n] = c·(n << 4)`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NibbleTable {
    pub(crate) lo: [u8; 16],
    pub(crate) hi: [u8; 16],
}

impl NibbleTable {
    /// Builds the split LUTs for constant `c` over `field` (width ≤ 8).
    pub(crate) fn build(field: &crate::Field, c: u16) -> NibbleTable {
        debug_assert!(field.width() <= 8);
        let order = field.order() as u16;
        let mut lo = [0u8; 16];
        let mut hi = [0u8; 16];
        for n in 0..16u16 {
            // Fields narrower than 8 bits (order ≤ 16) never index the
            // upper entries: valid elements have an empty high nibble.
            if n < order {
                lo[n as usize] = field.mul(c, n) as u8;
            }
            if (n << 4) < order {
                hi[n as usize] = field.mul(c, n << 4) as u8;
            }
        }
        NibbleTable { lo, hi }
    }

    /// The product `c·x` via the split LUTs (scalar form; the SIMD kernels
    /// evaluate the same two loads per lane — tests compare against this).
    #[cfg(test)]
    #[inline]
    pub(crate) fn mul(&self, x: u8) -> u8 {
        self.lo[usize::from(x & 0x0F)] ^ self.hi[usize::from(x >> 4)]
    }
}

/// Whether the SSSE3 kernels can run the whole multiple-of-16 head of a
/// slice of this length (the remainder runs scalar either way).
#[inline]
pub(crate) fn simd_head_len(len: usize) -> usize {
    len & !15
}

/// `xs[i] = c·xs[i]` over the multiple-of-16 prefix of `xs`, 16 lanes per
/// pass. Values must be `< 256`; lanes are packed to bytes with unsigned
/// saturation, so out-of-field values (which would panic the scalar
/// byte-table kernel) are not detected here.
#[cfg(target_arch = "x86_64")]
pub(crate) fn mul_slice_ssse3(nib: &NibbleTable, xs: &mut [u16]) {
    let head = simd_head_len(xs.len());
    debug_assert!(xs[..head].iter().all(|&x| x < 256));
    // SAFETY: the caller dispatched here only after runtime SSSE3
    // detection (`dispatch::kernel() == Kernel::Ssse3`).
    unsafe { mul_slice_ssse3_impl(nib, &mut xs[..head]) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "ssse3")]
unsafe fn mul_slice_ssse3_impl(nib: &NibbleTable, xs: &mut [u16]) {
    use std::arch::x86_64::*;
    debug_assert_eq!(xs.len() % 16, 0);
    // SAFETY: `[u8; 16]` is 16 readable bytes; unaligned loads are used
    // throughout. Chunk pointers stay in-bounds: each iteration touches
    // exactly the 16 `u16`s of its `chunks_exact_mut` window.
    unsafe {
        let lo_t = _mm_loadu_si128(nib.lo.as_ptr() as *const __m128i);
        let hi_t = _mm_loadu_si128(nib.hi.as_ptr() as *const __m128i);
        let mask = _mm_set1_epi8(0x0F);
        let zero = _mm_setzero_si128();
        for chunk in xs.chunks_exact_mut(16) {
            let p = chunk.as_mut_ptr() as *mut __m128i;
            let a = _mm_loadu_si128(p);
            let b = _mm_loadu_si128(p.add(1));
            let packed = _mm_packus_epi16(a, b);
            let prod = _mm_xor_si128(
                _mm_shuffle_epi8(lo_t, _mm_and_si128(packed, mask)),
                _mm_shuffle_epi8(hi_t, _mm_and_si128(_mm_srli_epi16(packed, 4), mask)),
            );
            _mm_storeu_si128(p, _mm_unpacklo_epi8(prod, zero));
            _mm_storeu_si128(p.add(1), _mm_unpackhi_epi8(prod, zero));
        }
    }
}

/// `acc[i] ^= c·src[i]` over the multiple-of-16 prefix, 16 lanes per pass.
/// Same element-range contract as [`mul_slice_ssse3`].
#[cfg(target_arch = "x86_64")]
pub(crate) fn mul_add_slice_ssse3(nib: &NibbleTable, acc: &mut [u16], src: &[u16]) {
    debug_assert_eq!(acc.len(), src.len());
    let head = simd_head_len(acc.len());
    debug_assert!(src[..head].iter().all(|&x| x < 256));
    // SAFETY: gated on runtime SSSE3 detection by the caller.
    unsafe { mul_add_slice_ssse3_impl(nib, &mut acc[..head], &src[..head]) }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "ssse3")]
unsafe fn mul_add_slice_ssse3_impl(nib: &NibbleTable, acc: &mut [u16], src: &[u16]) {
    use std::arch::x86_64::*;
    debug_assert_eq!(acc.len(), src.len());
    debug_assert_eq!(acc.len() % 16, 0);
    // SAFETY: as in `mul_slice_ssse3_impl`; the zipped chunk windows keep
    // every pointer inside its slice.
    unsafe {
        let lo_t = _mm_loadu_si128(nib.lo.as_ptr() as *const __m128i);
        let hi_t = _mm_loadu_si128(nib.hi.as_ptr() as *const __m128i);
        let mask = _mm_set1_epi8(0x0F);
        let zero = _mm_setzero_si128();
        for (ac, sc) in acc.chunks_exact_mut(16).zip(src.chunks_exact(16)) {
            let ap = ac.as_mut_ptr() as *mut __m128i;
            let sp = sc.as_ptr() as *const __m128i;
            let a = _mm_loadu_si128(sp);
            let b = _mm_loadu_si128(sp.add(1));
            let packed = _mm_packus_epi16(a, b);
            let prod = _mm_xor_si128(
                _mm_shuffle_epi8(lo_t, _mm_and_si128(packed, mask)),
                _mm_shuffle_epi8(hi_t, _mm_and_si128(_mm_srli_epi16(packed, 4), mask)),
            );
            let acc_lo = _mm_loadu_si128(ap);
            let acc_hi = _mm_loadu_si128(ap.add(1));
            _mm_storeu_si128(ap, _mm_xor_si128(acc_lo, _mm_unpacklo_epi8(prod, zero)));
            _mm_storeu_si128(
                ap.add(1),
                _mm_xor_si128(acc_hi, _mm_unpackhi_epi8(prod, zero)),
            );
        }
    }
}

#[cfg(all(test, target_arch = "x86_64"))]
mod tests {
    use super::*;
    use crate::Field;

    #[test]
    fn nibble_table_matches_full_product() {
        let f = Field::gf256();
        for c in [0u16, 1, 2, 0x1D, 0x53, 0xFF] {
            let nib = NibbleTable::build(&f, c);
            for x in 0..256u16 {
                assert_eq!(u16::from(nib.mul(x as u8)), f.mul(c, x), "c={c} x={x}");
            }
        }
    }

    #[test]
    fn ssse3_kernels_match_scalar_products() {
        if !std::is_x86_feature_detected!("ssse3") {
            return;
        }
        let f = Field::gf256();
        let src: Vec<u16> = (0..256u16).chain(0..64).collect(); // 320 = 20×16
        for c in [0u16, 1, 0x1D, 0xA9, 0xFF] {
            let nib = NibbleTable::build(&f, c);
            let mut xs = src.clone();
            mul_slice_ssse3(&nib, &mut xs);
            for (got, &x) in xs.iter().zip(&src) {
                assert_eq!(*got, f.mul(c, x), "mul_slice c={c} x={x}");
            }
            let mut acc: Vec<u16> = src.iter().rev().copied().collect();
            let snapshot = acc.clone();
            mul_add_slice_ssse3(&nib, &mut acc, &src);
            for ((got, &was), &x) in acc.iter().zip(&snapshot).zip(&src) {
                assert_eq!(*got, was ^ f.mul(c, x), "mul_add_slice c={c} x={x}");
            }
        }
    }
}
