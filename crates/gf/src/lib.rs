//! Galois field arithmetic for DNA storage error correction.
//!
//! This crate implements the finite fields GF(2^m) for 2 ≤ m ≤ 16 together
//! with the polynomial helpers needed by Reed–Solomon coding. The DNA storage
//! architecture of Organick et al. (reproduced by this workspace) uses
//! Reed–Solomon codewords over GF(2^16) with 65535 symbols; the laptop-scale
//! experiment geometry in this reproduction uses GF(2^8). Both are served by
//! the same runtime-parameterized [`Field`].
//!
//! Elements are represented as `u16` regardless of the field width; values
//! must be `< field.order()`.
//!
//! Hot loops should use the table-driven kernels — [`Field::mul_table`] /
//! [`MulTable`] for fixed constants, [`Field::mul_slice`] /
//! [`Field::mul_add_slice`] for per-call constants, [`horner_eval_block`]
//! for multi-root syndromes — instead of scalar [`Field::mul`]; the kernel
//! design is documented in `PERFORMANCE.md` at the repository root. Slice
//! kernels pick SIMD or scalar implementations once per process via
//! [`dispatch`] (override with `DNA_SKEW_SIMD=scalar`); every accelerated
//! path is byte-identical to its scalar reference.
//!
//! # Examples
//!
//! ```
//! use dna_gf::Field;
//!
//! # fn main() -> Result<(), dna_gf::GfError> {
//! let f = Field::gf256();
//! let a = 0x53;
//! let b = 0xCA;
//! let p = f.mul(a, b);
//! assert_eq!(f.div(p, b)?, a);
//! assert_eq!(f.add(a, a), 0); // characteristic 2
//! # Ok(())
//! # }
//! ```

// `unsafe` is denied crate-wide and re-allowed in exactly one module:
// `simd`, which wraps `std::arch` intrinsics behind runtime detection.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod dispatch;
mod field;
mod mul_table;
pub mod poly;
mod simd;
mod tables;

pub use field::Field;
pub use mul_table::{
    horner_all_zero, horner_all_zero_in, horner_eval_block, horner_eval_block_in, MulTable,
};

use std::error::Error;
use std::fmt;

/// Errors produced by field construction and arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GfError {
    /// The requested field width `m` is outside the supported range 2..=16.
    UnsupportedWidth(u8),
    /// The supplied reduction polynomial is not primitive over GF(2),
    /// so α = 2 does not generate the multiplicative group.
    NotPrimitive(u32),
    /// An element is not a member of the field (value ≥ 2^m).
    ElementOutOfRange {
        /// The offending value.
        value: u32,
        /// The field order (2^m).
        order: usize,
    },
    /// Division (or inversion) by zero.
    DivisionByZero,
}

impl fmt::Display for GfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GfError::UnsupportedWidth(m) => {
                write!(f, "unsupported field width m={m}, expected 2..=16")
            }
            GfError::NotPrimitive(p) => {
                write!(f, "reduction polynomial {p:#x} is not primitive over GF(2)")
            }
            GfError::ElementOutOfRange { value, order } => {
                write!(f, "element {value} is outside field of order {order}")
            }
            GfError::DivisionByZero => write!(f, "division by zero in GF(2^m)"),
        }
    }
}

impl Error for GfError {}
