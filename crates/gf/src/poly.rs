//! Polynomial arithmetic over GF(2^m).
//!
//! Polynomials are slices of `u16` coefficients in **ascending** degree
//! order: `p[0] + p[1]·x + p[2]·x² + …`. These helpers are free functions
//! taking the [`Field`] explicitly; Reed–Solomon coding composes them.
//!
//! # Examples
//!
//! ```
//! use dna_gf::{poly, Field};
//!
//! let f = Field::gf256();
//! // (1 + x) · (1 + x) = 1 + x² in characteristic 2
//! let sq = poly::mul(&f, &[1, 1], &[1, 1]);
//! assert_eq!(sq, vec![1, 0, 1]);
//! assert_eq!(poly::eval(&f, &sq, 7), f.add(1, f.mul(7, 7)));
//! ```

use crate::Field;

/// Evaluates `p` at `x` using Horner's rule.
pub fn eval(field: &Field, p: &[u16], x: u16) -> u16 {
    let mut acc = 0u16;
    for &c in p.iter().rev() {
        acc = field.add(field.mul(acc, x), c);
    }
    acc
}

/// Adds two polynomials coefficient-wise (XOR), returning a polynomial of
/// the longer length (no degree normalization is performed).
pub fn add(_field: &Field, a: &[u16], b: &[u16]) -> Vec<u16> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = long.to_vec();
    for (o, &s) in out.iter_mut().zip(short.iter()) {
        *o ^= s;
    }
    out
}

/// Multiplies two polynomials. The zero polynomial is represented by an
/// empty slice (or any all-zero slice).
pub fn mul(field: &Field, a: &[u16], b: &[u16]) -> Vec<u16> {
    let mut out = Vec::new();
    mul_into(field, a, b, &mut out);
    out
}

/// [`mul`] writing the product into `out` (cleared first), so hot loops
/// can reuse one buffer: no allocation occurs once `out`'s capacity covers
/// `a.len() + b.len() − 1`. The row-times-constant inner step runs through
/// [`Field::mul_add_slice`], which looks the row coefficient's log up once.
pub fn mul_into(field: &Field, a: &[u16], b: &[u16], out: &mut Vec<u16>) {
    out.clear();
    if a.is_empty() || b.is_empty() {
        return;
    }
    out.resize(a.len() + b.len() - 1, 0);
    for (i, &ai) in a.iter().enumerate() {
        field.mul_add_slice(&mut out[i..i + b.len()], b, ai);
    }
}

/// Multiplies every coefficient of `p` by the scalar `s`.
pub fn scale(field: &Field, p: &[u16], s: u16) -> Vec<u16> {
    p.iter().map(|&c| field.mul(c, s)).collect()
}

/// Truncates `p` modulo `x^k` (keeps the low `k` coefficients).
pub fn mod_xk(p: &[u16], k: usize) -> Vec<u16> {
    p[..p.len().min(k)].to_vec()
}

/// The formal derivative of `p`. In characteristic 2 the even-degree terms
/// vanish: d/dx Σ cᵢxⁱ = Σ_{i odd} cᵢ x^{i−1}.
pub fn derivative(_field: &Field, p: &[u16]) -> Vec<u16> {
    if p.len() <= 1 {
        return Vec::new();
    }
    let mut out = vec![0u16; p.len() - 1];
    for (i, &c) in p.iter().enumerate().skip(1) {
        if i % 2 == 1 {
            out[i - 1] = c;
        }
    }
    out
}

/// The degree of `p`, ignoring trailing zero coefficients; `None` for the
/// zero polynomial.
pub fn degree(p: &[u16]) -> Option<usize> {
    p.iter().rposition(|&c| c != 0)
}

/// Evaluates `p` at every element α^0 … α^{n−1}; used by Chien-search-style
/// scans. Returns the vector of evaluations.
pub fn eval_at_powers(field: &Field, p: &[u16], n: usize) -> Vec<u16> {
    (0..n)
        .map(|i| eval(field, p, field.alpha_pow(i as i64)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_constant_and_identity() {
        let f = Field::gf256();
        assert_eq!(eval(&f, &[42], 17), 42);
        assert_eq!(eval(&f, &[0, 1], 17), 17); // p(x) = x
        assert_eq!(eval(&f, &[], 17), 0);
    }

    #[test]
    fn add_is_xor_and_length_max() {
        let f = Field::gf256();
        assert_eq!(add(&f, &[1, 2, 3], &[1]), vec![0, 2, 3]);
        assert_eq!(add(&f, &[1], &[1, 2, 3]), vec![0, 2, 3]);
    }

    #[test]
    fn mul_by_zero_and_one() {
        let f = Field::gf256();
        assert_eq!(mul(&f, &[], &[1, 2]), Vec::<u16>::new());
        assert_eq!(mul(&f, &[1], &[5, 6, 7]), vec![5, 6, 7]);
    }

    #[test]
    fn mul_into_reuses_buffer_and_matches_mul() {
        let f = Field::gf256();
        let mut buf = Vec::new();
        for (a, b) in [
            (vec![1u16, 2, 3], vec![4u16, 5]),
            (vec![0, 0, 7], vec![9]),
            (vec![], vec![1, 2]),
            (vec![255, 1], vec![0, 0]),
        ] {
            mul_into(&f, &a, &b, &mut buf);
            assert_eq!(buf, mul(&f, &a, &b), "a={a:?} b={b:?}");
        }
    }

    #[test]
    fn mul_distributes_over_eval() {
        let f = Field::gf256();
        let a = [3, 0, 7, 1];
        let b = [9, 4];
        let prod = mul(&f, &a, &b);
        for x in [0u16, 1, 2, 100, 255] {
            assert_eq!(eval(&f, &prod, x), f.mul(eval(&f, &a, x), eval(&f, &b, x)));
        }
    }

    #[test]
    fn derivative_drops_even_terms() {
        let f = Field::gf256();
        // p = c0 + c1 x + c2 x^2 + c3 x^3 → p' = c1 + c3 x^2 (char 2)
        let d = derivative(&f, &[10, 20, 30, 40]);
        assert_eq!(d, vec![20, 0, 40]);
        assert_eq!(derivative(&f, &[5]), Vec::<u16>::new());
    }

    #[test]
    fn degree_ignores_trailing_zeros() {
        assert_eq!(degree(&[0, 0, 0]), None);
        assert_eq!(degree(&[]), None);
        assert_eq!(degree(&[1, 0, 2, 0]), Some(2));
    }

    #[test]
    fn scale_then_eval_commutes() {
        let f = Field::gf256();
        let p = [1, 2, 3];
        let s = 100;
        for x in [0u16, 5, 200] {
            assert_eq!(eval(&f, &scale(&f, &p, s), x), f.mul(s, eval(&f, &p, x)));
        }
    }

    #[test]
    fn eval_at_powers_matches_pointwise() {
        let f = Field::gf16();
        let p = [7, 3, 1];
        let evals = eval_at_powers(&f, &p, 15);
        for (i, &v) in evals.iter().enumerate() {
            assert_eq!(v, eval(&f, &p, f.alpha_pow(i as i64)));
        }
    }
}
