//! Per-constant multiplication tables: the branch-free hot-path kernel.
//!
//! [`Field::mul`] costs two table lookups, an add, and two zero-branches
//! per product. Hot loops that multiply *many* elements by the *same*
//! constant — the Reed–Solomon encoder's LFSR taps, syndrome roots, Chien
//! rotation steps — can instead precompute the full `c·x` product table
//! once (`2^m` entries) and reduce every product to a single indexed load
//! with no branches. This is the standard trick production RS/fountain
//! pipelines use, and it is what the workspace's zero-allocation decode
//! kernels are built on (see `PERFORMANCE.md` at the repository root).

use crate::Field;

/// A precomputed `x ↦ c·x` table over GF(2^m) for one fixed constant `c`.
///
/// Construction is `O(2^m)`; every product afterwards is a single table
/// load with no zero-branches. Fields with `m ≤ 8` (notably GF(256), the
/// laptop-scale field) use a dedicated byte-entry table: 256 bytes for
/// GF(256), so a handful of tables stay resident in L1.
///
/// # Examples
///
/// ```
/// use dna_gf::Field;
///
/// let f = Field::gf256();
/// let t = f.mul_table(0x53);
/// assert_eq!(t.mul(0xCA), f.mul(0x53, 0xCA));
/// assert_eq!(t.mul(0), 0);
/// ```
#[derive(Debug, Clone)]
pub struct MulTable {
    repr: Repr,
}

#[derive(Debug, Clone)]
enum Repr {
    /// `m ≤ 8`: products fit a byte; GF(256) tables are 4 cache lines.
    Byte(Box<[u8]>),
    /// `m > 8`: full-width entries.
    Wide(Box<[u16]>),
}

impl MulTable {
    /// Builds the table for constant `c` over `field`.
    pub(crate) fn build(field: &Field, c: u16) -> MulTable {
        debug_assert!((c as usize) < field.order());
        let order = field.order();
        if field.width() <= 8 {
            let table: Box<[u8]> = (0..order as u16).map(|x| field.mul(c, x) as u8).collect();
            MulTable {
                repr: Repr::Byte(table),
            }
        } else {
            let table: Box<[u16]> = (0..=(order - 1) as u16).map(|x| field.mul(c, x)).collect();
            MulTable {
                repr: Repr::Wide(table),
            }
        }
    }

    /// Number of entries (the field order `2^m`).
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Byte(t) => t.len(),
            Repr::Wide(t) => t.len(),
        }
    }

    /// Never true: tables always hold `2^m ≥ 4` entries.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The product `c·x`: one indexed load, no branches.
    ///
    /// # Panics
    ///
    /// Panics when `x` is not a field element (index out of bounds).
    #[inline]
    pub fn mul(&self, x: u16) -> u16 {
        match &self.repr {
            Repr::Byte(t) => u16::from(t[x as usize]),
            Repr::Wide(t) => t[x as usize],
        }
    }

    /// One Horner step: `c·acc + next` (add is XOR).
    #[inline]
    pub fn horner_step(&self, acc: u16, next: u16) -> u16 {
        self.mul(acc) ^ next
    }

    /// Evaluates the polynomial whose coefficients are given in
    /// **descending** degree order at this table's constant, by folding
    /// [`MulTable::horner_step`] over `coeffs`. This is the syndrome
    /// kernel: a received word in transmission order *is* its polynomial's
    /// descending coefficients.
    pub fn horner_eval(&self, coeffs: &[u16]) -> u16 {
        match &self.repr {
            Repr::Byte(t) => {
                let mut acc = 0u16;
                for &c in coeffs {
                    acc = u16::from(t[acc as usize]) ^ c;
                }
                acc
            }
            Repr::Wide(t) => {
                let mut acc = 0u16;
                for &c in coeffs {
                    acc = t[acc as usize] ^ c;
                }
                acc
            }
        }
    }

    /// Multiplies every element of `xs` by the constant, in place.
    pub fn mul_slice(&self, xs: &mut [u16]) {
        match &self.repr {
            Repr::Byte(t) => {
                for x in xs {
                    *x = u16::from(t[*x as usize]);
                }
            }
            Repr::Wide(t) => {
                for x in xs {
                    *x = t[*x as usize];
                }
            }
        }
    }

    /// Fused multiply-accumulate: `acc[i] ^= c·src[i]` for every `i`.
    ///
    /// # Panics
    ///
    /// Panics when the slices have different lengths.
    pub fn mul_add_slice(&self, acc: &mut [u16], src: &[u16]) {
        assert_eq!(acc.len(), src.len(), "mul_add_slice length mismatch");
        match &self.repr {
            Repr::Byte(t) => {
                for (a, &s) in acc.iter_mut().zip(src) {
                    *a ^= u16::from(t[s as usize]);
                }
            }
            Repr::Wide(t) => {
                for (a, &s) in acc.iter_mut().zip(src) {
                    *a ^= t[s as usize];
                }
            }
        }
    }
}

impl Field {
    /// Precomputes the `x ↦ c·x` product table for the constant `c` — the
    /// branch-free kernel for loops that multiply many elements by the
    /// same constant. See [`MulTable`].
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `c` is not a field element.
    pub fn mul_table(&self, c: u16) -> MulTable {
        MulTable::build(self, c)
    }

    /// Multiplies every element of `xs` by the scalar `c` in place without
    /// building a table: `log(c)` is looked up once and each element costs
    /// one exp-load plus a zero-branch. Prefer [`Field::mul_table`] when
    /// the constant is reused across many calls.
    pub fn mul_slice(&self, xs: &mut [u16], c: u16) {
        if c == 0 {
            xs.fill(0);
            return;
        }
        if c == 1 {
            return;
        }
        let logc = self.log(c).expect("c is non-zero") as usize;
        for x in xs {
            *x = self.mul_exp_log(*x, logc);
        }
    }

    /// Fused multiply-accumulate without a table: `acc[i] ^= c·src[i]`.
    /// The scalar's log is looked up once; zero elements of `src` cost one
    /// branch. This is the kernel for polynomial updates whose constant
    /// changes every call (Berlekamp–Massey, locator products).
    ///
    /// # Panics
    ///
    /// Panics when the slices have different lengths.
    pub fn mul_add_slice(&self, acc: &mut [u16], src: &[u16], c: u16) {
        assert_eq!(acc.len(), src.len(), "mul_add_slice length mismatch");
        if c == 0 {
            return;
        }
        let logc = self.log(c).expect("c is non-zero") as usize;
        for (a, &s) in acc.iter_mut().zip(src) {
            *a ^= self.mul_exp_log(s, logc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_field_mul_exhaustively_gf16() {
        let f = Field::new(4).unwrap();
        for c in 0..16u16 {
            let t = f.mul_table(c);
            assert_eq!(t.len(), 16);
            assert!(!t.is_empty());
            for x in 0..16u16 {
                assert_eq!(t.mul(x), f.mul(c, x), "c={c} x={x}");
            }
        }
    }

    #[test]
    fn gf256_uses_byte_entries_and_matches() {
        let f = Field::gf256();
        for c in [0u16, 1, 2, 0x53, 0xFF] {
            let t = f.mul_table(c);
            assert_eq!(t.len(), 256);
            for x in 0..256u16 {
                assert_eq!(t.mul(x), f.mul(c, x), "c={c} x={x}");
            }
        }
    }

    #[test]
    fn gf65536_wide_table_matches() {
        let f = Field::gf65536();
        for c in [1u16, 2, 0xBEEF, 0xFFFF] {
            let t = f.mul_table(c);
            assert_eq!(t.len(), 65536);
            for x in [0u16, 1, 2, 0x1234, 0xBEEF, 0xFFFF] {
                assert_eq!(t.mul(x), f.mul(c, x), "c={c} x={x}");
            }
        }
    }

    #[test]
    fn horner_eval_matches_poly_eval() {
        use crate::poly;
        let f = Field::gf256();
        let t = f.mul_table(0x1D);
        // Descending coefficients [3, 7, 1] = 3x² + 7x + 1.
        let desc = [3u16, 7, 1];
        let mut asc = desc.to_vec();
        asc.reverse();
        assert_eq!(t.horner_eval(&desc), poly::eval(&f, &asc, 0x1D));
        assert_eq!(t.horner_eval(&[]), 0);
        assert_eq!(t.horner_step(5, 9), f.add(f.mul(0x1D, 5), 9));
    }

    #[test]
    fn slice_kernels_match_scalar_loops() {
        let f = Field::gf256();
        let src: Vec<u16> = (0..256).collect();
        for c in [0u16, 1, 77, 255] {
            let t = f.mul_table(c);
            let mut xs = src.clone();
            t.mul_slice(&mut xs);
            let expected: Vec<u16> = src.iter().map(|&x| f.mul(c, x)).collect();
            assert_eq!(xs, expected, "table mul_slice c={c}");

            let mut xs = src.clone();
            f.mul_slice(&mut xs, c);
            assert_eq!(xs, expected, "field mul_slice c={c}");

            let mut acc: Vec<u16> = (0..256).rev().collect();
            let mut acc2 = acc.clone();
            let snapshot = acc.clone();
            t.mul_add_slice(&mut acc, &src);
            f.mul_add_slice(&mut acc2, &src, c);
            let expected: Vec<u16> = snapshot
                .iter()
                .zip(&src)
                .map(|(&a, &s)| a ^ f.mul(c, s))
                .collect();
            assert_eq!(acc, expected, "table mul_add_slice c={c}");
            assert_eq!(acc2, expected, "field mul_add_slice c={c}");
        }
    }

    #[test]
    fn wide_field_slice_kernels_match() {
        let f = Field::gf65536();
        let src: Vec<u16> = (0..64).map(|i| i * 1021 + 3).collect();
        for c in [0u16, 1, 0xBEEF] {
            let t = f.mul_table(c);
            let mut xs = src.clone();
            t.mul_slice(&mut xs);
            for (x, &s) in xs.iter().zip(&src) {
                assert_eq!(*x, f.mul(c, s));
            }
            let mut acc = vec![0xAAAAu16; src.len()];
            t.mul_add_slice(&mut acc, &src);
            for (a, &s) in acc.iter().zip(&src) {
                assert_eq!(*a, 0xAAAA ^ f.mul(c, s));
            }
        }
    }
}
