//! Per-constant multiplication tables: the branch-free hot-path kernel.
//!
//! [`Field::mul`] costs two table lookups, an add, and two zero-branches
//! per product. Hot loops that multiply *many* elements by the *same*
//! constant — the Reed–Solomon encoder's LFSR taps, syndrome roots, Chien
//! rotation steps — can instead precompute the full `c·x` product table
//! once (`2^m` entries) and reduce every product to a single indexed load
//! with no branches. This is the standard trick production RS/fountain
//! pipelines use, and it is what the workspace's zero-allocation decode
//! kernels are built on (see `PERFORMANCE.md` at the repository root).
//!
//! On top of the tables sit two dispatched accelerations (selected once
//! per process by [`crate::dispatch`], forced off by
//! `DNA_SKEW_SIMD=scalar`):
//!
//! - byte-wide fields carry split low/high-nibble product LUTs next to
//!   the full table, which the SSSE3 slice kernels shuffle 16 lanes at a
//!   time ([`MulTable::mul_slice`] / [`MulTable::mul_add_slice`] and the
//!   per-call-constant [`Field::mul_slice`] / [`Field::mul_add_slice`]);
//! - [`horner_eval_block`] streams a word **once** through a register
//!   block of up to 8 per-root Horner accumulators instead of one pass
//!   per root — the multi-root syndrome kernel.
//!
//! Every accelerated path is exact field arithmetic and byte-identical
//! to the scalar reference loops.

use crate::dispatch::{self, Kernel, SimdMode};
use crate::simd::NibbleTable;
use crate::Field;

/// A precomputed `x ↦ c·x` table over GF(2^m) for one fixed constant `c`.
///
/// Construction is `O(2^m)`; every product afterwards is a single table
/// load with no zero-branches. Fields with `m ≤ 8` (notably GF(256), the
/// laptop-scale field) use a dedicated byte-entry table: 256 bytes for
/// GF(256), so a handful of tables stay resident in L1 — plus the two
/// 16-entry nibble LUTs the SIMD slice kernels shuffle through.
///
/// # Examples
///
/// ```
/// use dna_gf::Field;
///
/// let f = Field::gf256();
/// let t = f.mul_table(0x53);
/// assert_eq!(t.mul(0xCA), f.mul(0x53, 0xCA));
/// assert_eq!(t.mul(0), 0);
/// ```
#[derive(Debug, Clone)]
pub struct MulTable {
    repr: Repr,
}

#[derive(Debug, Clone)]
enum Repr {
    /// `m ≤ 8`: products fit a byte; GF(256) tables are 4 cache lines.
    /// The split nibble LUTs (`lo[n] = c·n`, `hi[n] = c·(n·16)`) feed the
    /// SSSE3 `_mm_shuffle_epi8` slice kernels.
    Byte { full: Box<[u8]>, nib: NibbleTable },
    /// `m > 8`: full-width entries.
    Wide(Box<[u16]>),
}

impl MulTable {
    /// Builds the table for constant `c` over `field`.
    pub(crate) fn build(field: &Field, c: u16) -> MulTable {
        debug_assert!((c as usize) < field.order());
        let order = field.order();
        if field.width() <= 8 {
            let full: Box<[u8]> = (0..order as u16).map(|x| field.mul(c, x) as u8).collect();
            MulTable {
                repr: Repr::Byte {
                    full,
                    nib: NibbleTable::build(field, c),
                },
            }
        } else {
            let table: Box<[u16]> = (0..=(order - 1) as u16).map(|x| field.mul(c, x)).collect();
            MulTable {
                repr: Repr::Wide(table),
            }
        }
    }

    /// Number of entries (the field order `2^m`).
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Byte { full, .. } => full.len(),
            Repr::Wide(t) => t.len(),
        }
    }

    /// Never true: tables always hold `2^m ≥ 4` entries.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The product `c·x`: one indexed load, no branches.
    ///
    /// # Panics
    ///
    /// Panics when `x` is not a field element (index out of bounds).
    #[inline]
    pub fn mul(&self, x: u16) -> u16 {
        match &self.repr {
            Repr::Byte { full, .. } => u16::from(full[x as usize]),
            Repr::Wide(t) => t[x as usize],
        }
    }

    /// One Horner step: `c·acc + next` (add is XOR).
    #[inline]
    pub fn horner_step(&self, acc: u16, next: u16) -> u16 {
        self.mul(acc) ^ next
    }

    /// Evaluates the polynomial whose coefficients are given in
    /// **descending** degree order at this table's constant, by folding
    /// [`MulTable::horner_step`] over `coeffs`. This is the single-root
    /// syndrome kernel; decode paths that need *every* root use
    /// [`horner_eval_block`], which streams `coeffs` once for a whole
    /// block of roots.
    pub fn horner_eval(&self, coeffs: &[u16]) -> u16 {
        match &self.repr {
            Repr::Byte { full, .. } => {
                let mut acc = 0u16;
                for &c in coeffs {
                    acc = u16::from(full[acc as usize]) ^ c;
                }
                acc
            }
            Repr::Wide(t) => {
                let mut acc = 0u16;
                for &c in coeffs {
                    acc = t[acc as usize] ^ c;
                }
                acc
            }
        }
    }

    /// Multiplies every element of `xs` by the constant, in place, via
    /// the kernel selected by [`dispatch::kernel`].
    pub fn mul_slice(&self, xs: &mut [u16]) {
        self.mul_slice_in(dispatch::kernel(), xs);
    }

    /// [`MulTable::mul_slice`] through an explicit kernel — the entry
    /// point dispatch-identity tests use to compare the scalar reference
    /// against the SIMD path in one process. Requesting
    /// [`Kernel::Ssse3`] on a target without it falls back to scalar.
    pub fn mul_slice_in(&self, kernel: Kernel, xs: &mut [u16]) {
        match &self.repr {
            Repr::Byte { full, nib } => {
                let mut start = 0usize;
                #[cfg(target_arch = "x86_64")]
                if kernel == Kernel::Ssse3 && std::is_x86_feature_detected!("ssse3") {
                    crate::simd::mul_slice_ssse3(nib, xs);
                    start = crate::simd::simd_head_len(xs.len());
                }
                let _ = (kernel, nib);
                for x in &mut xs[start..] {
                    *x = u16::from(full[*x as usize]);
                }
            }
            Repr::Wide(t) => {
                for x in xs {
                    *x = t[*x as usize];
                }
            }
        }
    }

    /// Fused multiply-accumulate: `acc[i] ^= c·src[i]` for every `i`,
    /// via the kernel selected by [`dispatch::kernel`].
    ///
    /// # Panics
    ///
    /// Panics when the slices have different lengths.
    pub fn mul_add_slice(&self, acc: &mut [u16], src: &[u16]) {
        self.mul_add_slice_in(dispatch::kernel(), acc, src);
    }

    /// [`MulTable::mul_add_slice`] through an explicit kernel (see
    /// [`MulTable::mul_slice_in`]).
    ///
    /// # Panics
    ///
    /// Panics when the slices have different lengths.
    pub fn mul_add_slice_in(&self, kernel: Kernel, acc: &mut [u16], src: &[u16]) {
        assert_eq!(acc.len(), src.len(), "mul_add_slice length mismatch");
        match &self.repr {
            Repr::Byte { full, nib } => {
                let mut start = 0usize;
                #[cfg(target_arch = "x86_64")]
                if kernel == Kernel::Ssse3 && std::is_x86_feature_detected!("ssse3") {
                    crate::simd::mul_add_slice_ssse3(nib, acc, src);
                    start = crate::simd::simd_head_len(acc.len());
                }
                let _ = (kernel, nib);
                for (a, &s) in acc[start..].iter_mut().zip(&src[start..]) {
                    *a ^= u16::from(full[s as usize]);
                }
            }
            Repr::Wide(t) => {
                for (a, &s) in acc.iter_mut().zip(src) {
                    *a ^= t[s as usize];
                }
            }
        }
    }

    /// The full byte product table, when this is a byte-wide table.
    fn byte_table(&self) -> Option<&[u8]> {
        match &self.repr {
            Repr::Byte { full, .. } => Some(full),
            Repr::Wide(_) => None,
        }
    }
}

/// Evaluates the same descending-order polynomial at *every* table's
/// constant — the batched multi-root syndrome kernel. The scalar
/// reference runs one Horner pass over `coeffs` per root; the dispatched
/// form (any target, unless `DNA_SKEW_SIMD=scalar`) streams `coeffs`
/// **once per block of up to 8 roots**, keeping the block's accumulators
/// in registers, which is both one memory pass instead of `E` and an
/// 8-way independent-chain ILP win. Results are identical — every step
/// is the same exact table load and XOR.
///
/// `out` is cleared and filled with one evaluation per table, in order.
/// Wide (`m > 8`) tables always use the per-root reference: blocking
/// their 128 KiB tables would thrash L2 instead of helping.
pub fn horner_eval_block(tables: &[MulTable], coeffs: &[u16], out: &mut Vec<u16>) {
    horner_eval_block_in(dispatch::mode(), tables, coeffs, out);
}

/// [`horner_eval_block`] under an explicit mode — the comparison entry
/// point for dispatch-identity tests.
pub fn horner_eval_block_in(
    mode: SimdMode,
    tables: &[MulTable],
    coeffs: &[u16],
    out: &mut Vec<u16>,
) {
    out.clear();
    out.reserve(tables.len());
    if mode == SimdMode::Scalar || tables.first().is_none_or(|t| t.byte_table().is_none()) {
        out.extend(tables.iter().map(|t| t.horner_eval(coeffs)));
        return;
    }
    let mut rest = tables;
    while rest.len() >= 8 {
        let (blk, r) = rest.split_at(8);
        out.extend_from_slice(&horner_block_byte::<8>(blk, coeffs));
        rest = r;
    }
    if rest.len() >= 4 {
        let (blk, r) = rest.split_at(4);
        out.extend_from_slice(&horner_block_byte::<4>(blk, coeffs));
        rest = r;
    }
    out.extend(rest.iter().map(|t| t.horner_eval(coeffs)));
}

/// Whether the polynomial evaluates to zero at **every** table's constant
/// (all syndromes vanish — the `is_codeword` kernel). Exits early at the
/// first non-zero evaluation: per root in scalar mode, per block of roots
/// in the dispatched form.
pub fn horner_all_zero(tables: &[MulTable], coeffs: &[u16]) -> bool {
    horner_all_zero_in(dispatch::mode(), tables, coeffs)
}

/// [`horner_all_zero`] under an explicit mode (see
/// [`horner_eval_block_in`]).
pub fn horner_all_zero_in(mode: SimdMode, tables: &[MulTable], coeffs: &[u16]) -> bool {
    if mode == SimdMode::Scalar || tables.first().is_none_or(|t| t.byte_table().is_none()) {
        return tables.iter().all(|t| t.horner_eval(coeffs) == 0);
    }
    let mut rest = tables;
    while rest.len() >= 8 {
        let (blk, r) = rest.split_at(8);
        if horner_block_byte::<8>(blk, coeffs).iter().any(|&v| v != 0) {
            return false;
        }
        rest = r;
    }
    if rest.len() >= 4 {
        let (blk, r) = rest.split_at(4);
        if horner_block_byte::<4>(blk, coeffs).iter().any(|&v| v != 0) {
            return false;
        }
        rest = r;
    }
    rest.iter().all(|t| t.horner_eval(coeffs) == 0)
}

/// One register block of `B` simultaneous byte-table Horner chains: one
/// pass over `coeffs`, `B` independent accumulators. Every table must be
/// byte-wide (the callers guarantee it by checking the first table — a
/// table list always comes from one field).
fn horner_block_byte<const B: usize>(tables: &[MulTable], coeffs: &[u16]) -> [u16; B] {
    debug_assert_eq!(tables.len(), B);
    let mut tabs: [&[u8]; B] = [&[]; B];
    for (slot, t) in tabs.iter_mut().zip(tables) {
        *slot = t.byte_table().expect("blocked Horner requires byte tables");
    }
    let mut acc = [0u16; B];
    for &c in coeffs {
        for j in 0..B {
            acc[j] = u16::from(tabs[j][usize::from(acc[j])]) ^ c;
        }
    }
    acc
}

/// The slice length below which building on-the-fly nibble LUTs for a
/// per-call constant costs more than it saves.
const FIELD_SIMD_MIN_LEN: usize = 32;

impl Field {
    /// Precomputes the `x ↦ c·x` product table for the constant `c` — the
    /// branch-free kernel for loops that multiply many elements by the
    /// same constant. See [`MulTable`].
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `c` is not a field element.
    pub fn mul_table(&self, c: u16) -> MulTable {
        MulTable::build(self, c)
    }

    /// Multiplies every element of `xs` by the scalar `c` in place without
    /// building a full table: `log(c)` is looked up once and each element
    /// costs one exp-load plus a zero-branch. On byte-wide fields, long
    /// slices route through the SSSE3 nibble kernel when dispatched
    /// (two 16-entry LUTs are built on the fly — 32 products — then 16
    /// lanes per shuffle pass). Prefer [`Field::mul_table`] when the
    /// constant is reused across many calls.
    pub fn mul_slice(&self, xs: &mut [u16], c: u16) {
        if c == 0 {
            xs.fill(0);
            return;
        }
        if c == 1 {
            return;
        }
        let mut start = 0usize;
        #[cfg(target_arch = "x86_64")]
        if self.width() <= 8
            && xs.len() >= FIELD_SIMD_MIN_LEN
            && dispatch::kernel() == Kernel::Ssse3
        {
            let nib = NibbleTable::build(self, c);
            crate::simd::mul_slice_ssse3(&nib, xs);
            start = crate::simd::simd_head_len(xs.len());
        }
        let logc = self.log(c).expect("c is non-zero") as usize;
        for x in &mut xs[start..] {
            *x = self.mul_exp_log(*x, logc);
        }
    }

    /// Fused multiply-accumulate without a table: `acc[i] ^= c·src[i]`.
    /// The scalar's log is looked up once; zero elements of `src` cost one
    /// branch. Long byte-field slices route through the SSSE3 nibble
    /// kernel when dispatched, as in [`Field::mul_slice`]. This is the
    /// kernel for polynomial updates whose constant changes every call
    /// (Berlekamp–Massey, locator products).
    ///
    /// # Panics
    ///
    /// Panics when the slices have different lengths.
    pub fn mul_add_slice(&self, acc: &mut [u16], src: &[u16], c: u16) {
        assert_eq!(acc.len(), src.len(), "mul_add_slice length mismatch");
        if c == 0 {
            return;
        }
        let mut start = 0usize;
        #[cfg(target_arch = "x86_64")]
        if self.width() <= 8
            && acc.len() >= FIELD_SIMD_MIN_LEN
            && dispatch::kernel() == Kernel::Ssse3
        {
            let nib = NibbleTable::build(self, c);
            crate::simd::mul_add_slice_ssse3(&nib, acc, src);
            start = crate::simd::simd_head_len(acc.len());
        }
        let logc = self.log(c).expect("c is non-zero") as usize;
        for (a, &s) in acc[start..].iter_mut().zip(&src[start..]) {
            *a ^= self.mul_exp_log(s, logc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_field_mul_exhaustively_gf16() {
        let f = Field::new(4).unwrap();
        for c in 0..16u16 {
            let t = f.mul_table(c);
            assert_eq!(t.len(), 16);
            assert!(!t.is_empty());
            for x in 0..16u16 {
                assert_eq!(t.mul(x), f.mul(c, x), "c={c} x={x}");
            }
        }
    }

    #[test]
    fn gf256_uses_byte_entries_and_matches() {
        let f = Field::gf256();
        for c in [0u16, 1, 2, 0x53, 0xFF] {
            let t = f.mul_table(c);
            assert_eq!(t.len(), 256);
            for x in 0..256u16 {
                assert_eq!(t.mul(x), f.mul(c, x), "c={c} x={x}");
            }
        }
    }

    #[test]
    fn gf65536_wide_table_matches() {
        let f = Field::gf65536();
        for c in [1u16, 2, 0xBEEF, 0xFFFF] {
            let t = f.mul_table(c);
            assert_eq!(t.len(), 65536);
            for x in [0u16, 1, 2, 0x1234, 0xBEEF, 0xFFFF] {
                assert_eq!(t.mul(x), f.mul(c, x), "c={c} x={x}");
            }
        }
    }

    #[test]
    fn horner_eval_matches_poly_eval() {
        use crate::poly;
        let f = Field::gf256();
        let t = f.mul_table(0x1D);
        // Descending coefficients [3, 7, 1] = 3x² + 7x + 1.
        let desc = [3u16, 7, 1];
        let mut asc = desc.to_vec();
        asc.reverse();
        assert_eq!(t.horner_eval(&desc), poly::eval(&f, &asc, 0x1D));
        assert_eq!(t.horner_eval(&[]), 0);
        assert_eq!(t.horner_step(5, 9), f.add(f.mul(0x1D, 5), 9));
    }

    #[test]
    fn slice_kernels_match_scalar_loops() {
        let f = Field::gf256();
        let src: Vec<u16> = (0..256).collect();
        for c in [0u16, 1, 77, 255] {
            let t = f.mul_table(c);
            let mut xs = src.clone();
            t.mul_slice(&mut xs);
            let expected: Vec<u16> = src.iter().map(|&x| f.mul(c, x)).collect();
            assert_eq!(xs, expected, "table mul_slice c={c}");

            let mut xs = src.clone();
            f.mul_slice(&mut xs, c);
            assert_eq!(xs, expected, "field mul_slice c={c}");

            let mut acc: Vec<u16> = (0..256).rev().collect();
            let mut acc2 = acc.clone();
            let snapshot = acc.clone();
            t.mul_add_slice(&mut acc, &src);
            f.mul_add_slice(&mut acc2, &src, c);
            let expected: Vec<u16> = snapshot
                .iter()
                .zip(&src)
                .map(|(&a, &s)| a ^ f.mul(c, s))
                .collect();
            assert_eq!(acc, expected, "table mul_add_slice c={c}");
            assert_eq!(acc2, expected, "field mul_add_slice c={c}");
        }
    }

    #[test]
    fn forced_kernels_agree_on_awkward_lengths() {
        let f = Field::gf256();
        let t = f.mul_table(0xA7);
        for len in [0usize, 1, 15, 16, 17, 33, 255] {
            let src: Vec<u16> = (0..len).map(|i| (i * 13 % 256) as u16).collect();
            let mut scalar = src.clone();
            let mut dispatched = src.clone();
            t.mul_slice_in(Kernel::Scalar, &mut scalar);
            t.mul_slice_in(dispatch::kernel(), &mut dispatched);
            assert_eq!(scalar, dispatched, "len={len}");
        }
    }

    #[test]
    fn wide_field_slice_kernels_match() {
        let f = Field::gf65536();
        let src: Vec<u16> = (0..64).map(|i| i * 1021 + 3).collect();
        for c in [0u16, 1, 0xBEEF] {
            let t = f.mul_table(c);
            let mut xs = src.clone();
            t.mul_slice(&mut xs);
            for (x, &s) in xs.iter().zip(&src) {
                assert_eq!(*x, f.mul(c, s));
            }
            let mut acc = vec![0xAAAAu16; src.len()];
            t.mul_add_slice(&mut acc, &src);
            for (a, &s) in acc.iter().zip(&src) {
                assert_eq!(*a, 0xAAAA ^ f.mul(c, s));
            }
        }
    }

    #[test]
    fn blocked_horner_matches_per_root_both_fields() {
        for field in [Field::gf256(), Field::gf65536()] {
            let max = field.group_order().min(1000) as u16;
            let tables: Vec<MulTable> = (0..23u16)
                .map(|j| field.mul_table(field.alpha_pow(i64::from(j) + 1)))
                .collect();
            let word: Vec<u16> = (0..255u16).map(|i| i % max).collect();
            let per_root: Vec<u16> = tables.iter().map(|t| t.horner_eval(&word)).collect();
            let mut blocked = Vec::new();
            horner_eval_block_in(SimdMode::Auto, &tables, &word, &mut blocked);
            assert_eq!(blocked, per_root);
            let mut scalar = Vec::new();
            horner_eval_block_in(SimdMode::Scalar, &tables, &word, &mut scalar);
            assert_eq!(scalar, per_root);
            assert!(!horner_all_zero_in(SimdMode::Auto, &tables, &word));
            assert!(horner_all_zero_in(SimdMode::Auto, &tables, &[]));
        }
    }
}
