//! Runtime kernel dispatch: pick the fastest hot-path kernel the CPU
//! supports, with a guaranteed-identical scalar reference for every
//! accelerated path.
//!
//! Two levels of acceleration exist, selected **once** per process:
//!
//! - **Portable batch kernels** (register-blocked multi-root syndromes,
//!   word-at-a-time strand pack/unpack, the consensus chunk probe):
//!   plain Rust, faster on every target. Active whenever [`mode`] is
//!   [`SimdMode::Auto`].
//! - **SIMD slice kernels** (SSSE3 `_mm_shuffle_epi8` nibble-table
//!   GF(256) products): active only when the mode is `Auto` *and* the
//!   CPU reports SSSE3 at runtime ([`kernel`] returns
//!   [`Kernel::Ssse3`]).
//!
//! The `DNA_SKEW_SIMD` environment variable overrides the selection:
//! `auto` (default) enables everything the CPU supports, `scalar`
//! forces the reference kernels everywhere — the escape hatch for
//! exotic targets and the comparison arm for dispatch-identity tests.
//! Every accelerated kernel is exact GF/bit arithmetic, so outputs are
//! byte-identical under either setting; the conformance goldens pin
//! this.

use std::sync::atomic::{AtomicU8, Ordering};

/// The process-wide dispatch policy, from `DNA_SKEW_SIMD`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdMode {
    /// Use the fastest kernels the target and CPU support (default).
    Auto,
    /// Force the scalar reference kernels everywhere.
    Scalar,
}

/// The slice-kernel implementation selected for this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// The scalar reference loops.
    Scalar,
    /// SSSE3 nibble-table kernels (x86-64 with runtime-detected SSSE3).
    Ssse3,
}

// 0 = uninitialized; 1 = scalar; 2 = auto (mode) / ssse3 (kernel).
static MODE: AtomicU8 = AtomicU8::new(0);
static KERNEL: AtomicU8 = AtomicU8::new(0);
// 0 = no override; 1 = force scalar; 2 = force auto.
static OVERRIDE: AtomicU8 = AtomicU8::new(0);

fn mode_from_env() -> SimdMode {
    match std::env::var("DNA_SKEW_SIMD") {
        Ok(v) if v.eq_ignore_ascii_case("scalar") => SimdMode::Scalar,
        Ok(v) if v.eq_ignore_ascii_case("auto") || v.is_empty() => SimdMode::Auto,
        Ok(v) => {
            eprintln!("warning: ignoring invalid DNA_SKEW_SIMD value {v:?} (want auto or scalar)");
            SimdMode::Auto
        }
        Err(_) => SimdMode::Auto,
    }
}

/// The active dispatch mode: the `DNA_SKEW_SIMD` environment variable,
/// read once and cached for the life of the process.
pub fn mode() -> SimdMode {
    match OVERRIDE.load(Ordering::Relaxed) {
        1 => return SimdMode::Scalar,
        2 => return SimdMode::Auto,
        _ => {}
    }
    match MODE.load(Ordering::Relaxed) {
        1 => SimdMode::Scalar,
        2 => SimdMode::Auto,
        _ => {
            let m = mode_from_env();
            MODE.store(if m == SimdMode::Scalar { 1 } else { 2 }, Ordering::Relaxed);
            m
        }
    }
}

/// Whether the portable batch kernels (blocked syndromes, word-at-a-time
/// pack/unpack, the consensus chunk probe) are active — true unless the
/// mode forces scalar.
pub fn accelerated() -> bool {
    mode() == SimdMode::Auto
}

fn detect_kernel() -> Kernel {
    if mode() == SimdMode::Scalar {
        return Kernel::Scalar;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::is_x86_feature_detected!("ssse3") {
            return Kernel::Ssse3;
        }
    }
    Kernel::Scalar
}

/// The slice-kernel implementation for this process: [`Kernel::Ssse3`]
/// when the mode allows it and the CPU supports it, [`Kernel::Scalar`]
/// otherwise. Detected once and cached.
pub fn kernel() -> Kernel {
    if OVERRIDE.load(Ordering::Relaxed) != 0 {
        return detect_kernel();
    }
    match KERNEL.load(Ordering::Relaxed) {
        1 => Kernel::Scalar,
        2 => Kernel::Ssse3,
        _ => {
            let k = detect_kernel();
            KERNEL.store(if k == Kernel::Scalar { 1 } else { 2 }, Ordering::Relaxed);
            k
        }
    }
}

/// Process-wide mode override for dispatch-identity tests: `Some(mode)`
/// pins the mode regardless of the environment, `None` returns to the
/// cached `DNA_SKEW_SIMD` selection. Accelerated and scalar kernels are
/// byte-identical, so flipping this mid-flight is safe — it exists so a
/// single test process can exercise both arms.
pub fn force_mode(mode: Option<SimdMode>) {
    OVERRIDE.store(
        match mode {
            None => 0,
            Some(SimdMode::Scalar) => 1,
            Some(SimdMode::Auto) => 2,
        },
        Ordering::Relaxed,
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn force_mode_overrides_and_restores() {
        force_mode(Some(SimdMode::Scalar));
        assert_eq!(mode(), SimdMode::Scalar);
        assert_eq!(kernel(), Kernel::Scalar);
        assert!(!accelerated());
        force_mode(Some(SimdMode::Auto));
        assert_eq!(mode(), SimdMode::Auto);
        assert!(accelerated());
        force_mode(None);
        // Back to the cached env selection; on a default environment that
        // is Auto, but all we can assert portably is self-consistency.
        assert_eq!(mode() == SimdMode::Auto, accelerated());
    }

    #[test]
    fn ssse3_kernel_only_under_auto() {
        force_mode(Some(SimdMode::Scalar));
        assert_eq!(kernel(), Kernel::Scalar);
        force_mode(None);
    }
}
