//! The runtime-parameterized field GF(2^m).

use crate::tables::default_poly;
use crate::GfError;
use std::fmt;
use std::sync::Arc;

/// The finite field GF(2^m), 2 ≤ m ≤ 16, with log/antilog multiplication.
///
/// A `Field` is cheap to clone (the tables are shared behind an [`Arc`]).
/// Elements are `u16` values in `0..order()`; addition is XOR, and
/// multiplication uses exp/log tables generated from a primitive reduction
/// polynomial, so all operations are O(1).
///
/// # Examples
///
/// ```
/// use dna_gf::Field;
///
/// # fn main() -> Result<(), dna_gf::GfError> {
/// let f = Field::new(8)?; // GF(256) with the default primitive polynomial
/// assert_eq!(f.order(), 256);
/// assert_eq!(f.mul(0, 123), 0);
/// let x = 57;
/// assert_eq!(f.mul(x, f.inv(x)?), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Field {
    m: u8,
    poly: u32,
    /// exp[i] = α^i for i in 0..2*(order-1), doubled so `mul` avoids a modulo.
    exp: Arc<[u16]>,
    /// log[x] = i such that α^i = x, for x in 1..order (log[0] is unused).
    log: Arc<[u32]>,
}

impl fmt::Debug for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Field")
            .field("m", &self.m)
            .field("poly", &format_args!("{:#x}", self.poly))
            .finish()
    }
}

impl PartialEq for Field {
    fn eq(&self, other: &Self) -> bool {
        self.m == other.m && self.poly == other.poly
    }
}

impl Eq for Field {}

impl Field {
    /// Creates GF(2^m) with the default primitive polynomial for `m`.
    ///
    /// # Errors
    ///
    /// Returns [`GfError::UnsupportedWidth`] when `m` is outside 2..=16.
    pub fn new(m: u8) -> Result<Self, GfError> {
        let poly = default_poly(m).ok_or(GfError::UnsupportedWidth(m))?;
        Self::with_poly(m, poly)
    }

    /// Creates GF(2^m) reducing by the caller-provided polynomial
    /// (including the leading `x^m` term).
    ///
    /// # Errors
    ///
    /// Returns [`GfError::UnsupportedWidth`] for `m` outside 2..=16 and
    /// [`GfError::NotPrimitive`] when `poly` does not make α = x a generator
    /// of the multiplicative group.
    pub fn with_poly(m: u8, poly: u32) -> Result<Self, GfError> {
        if !(2..=16).contains(&m) {
            return Err(GfError::UnsupportedWidth(m));
        }
        let order = 1usize << m;
        let group = order - 1;
        let mut exp = vec![0u16; 2 * group];
        let mut log = vec![0u32; order];
        let mut x: u32 = 1;
        for (i, slot) in exp.iter_mut().take(group).enumerate() {
            *slot = x as u16;
            if i > 0 && x == 1 {
                // α cycled before covering the whole group: not primitive.
                return Err(GfError::NotPrimitive(poly));
            }
            log[x as usize] = i as u32;
            x <<= 1;
            if x & (1 << m) != 0 {
                x ^= poly;
            }
        }
        if x != 1 {
            return Err(GfError::NotPrimitive(poly));
        }
        // Check every non-zero element was reached (α is a generator).
        if log[1..]
            .iter()
            .enumerate()
            .any(|(v, &l)| l == 0 && v + 1 != 1)
        {
            return Err(GfError::NotPrimitive(poly));
        }
        for i in group..2 * group {
            exp[i] = exp[i - group];
        }
        Ok(Field {
            m,
            poly,
            exp: exp.into(),
            log: log.into(),
        })
    }

    /// GF(2^4): 16 elements, 15-symbol Reed–Solomon codewords.
    ///
    /// # Panics
    ///
    /// Never panics; the default polynomial for m=4 is primitive.
    pub fn gf16() -> Self {
        Self::new(4).expect("default GF(16) polynomial is primitive")
    }

    /// GF(2^8): 256 elements, 255-symbol Reed–Solomon codewords. This is the
    /// laptop-scale field used by the reproduction's default experiments.
    pub fn gf256() -> Self {
        Self::new(8).expect("default GF(256) polynomial is primitive")
    }

    /// GF(2^16): 65536 elements, 65535-symbol Reed–Solomon codewords — the
    /// field used by the paper's full-scale storage architecture.
    pub fn gf65536() -> Self {
        Self::new(16).expect("default GF(65536) polynomial is primitive")
    }

    /// The field width m (elements are m bits wide).
    pub fn width(&self) -> u8 {
        self.m
    }

    /// The reduction polynomial, including the leading `x^m` term.
    pub fn reduction_poly(&self) -> u32 {
        self.poly
    }

    /// The number of field elements, 2^m.
    pub fn order(&self) -> usize {
        1 << self.m
    }

    /// The size of the multiplicative group, 2^m − 1. This is also the
    /// length of a full Reed–Solomon codeword over this field.
    pub fn group_order(&self) -> usize {
        self.order() - 1
    }

    /// Checks that `x` is a field element.
    ///
    /// # Errors
    ///
    /// Returns [`GfError::ElementOutOfRange`] when `x ≥ 2^m`.
    pub fn check(&self, x: u16) -> Result<(), GfError> {
        if (x as usize) < self.order() {
            Ok(())
        } else {
            Err(GfError::ElementOutOfRange {
                value: u32::from(x),
                order: self.order(),
            })
        }
    }

    /// Field addition (and subtraction): bitwise XOR.
    #[inline]
    pub fn add(&self, a: u16, b: u16) -> u16 {
        a ^ b
    }

    /// Field subtraction; identical to [`Field::add`] in characteristic 2.
    #[inline]
    pub fn sub(&self, a: u16, b: u16) -> u16 {
        a ^ b
    }

    /// Field multiplication via log/antilog tables.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if an operand is out of range; use
    /// [`Field::check`] to validate untrusted input.
    #[inline]
    pub fn mul(&self, a: u16, b: u16) -> u16 {
        debug_assert!((a as usize) < self.order() && (b as usize) < self.order());
        if a == 0 || b == 0 {
            return 0;
        }
        let idx = self.log[a as usize] as usize + self.log[b as usize] as usize;
        self.exp[idx]
    }

    /// Multiplicative inverse.
    ///
    /// # Errors
    ///
    /// Returns [`GfError::DivisionByZero`] for `x = 0`.
    #[inline]
    pub fn inv(&self, x: u16) -> Result<u16, GfError> {
        if x == 0 {
            return Err(GfError::DivisionByZero);
        }
        let group = self.group_order() as u32;
        Ok(self.exp[(group - self.log[x as usize]) as usize])
    }

    /// Field division `a / b`.
    ///
    /// # Errors
    ///
    /// Returns [`GfError::DivisionByZero`] when `b = 0`.
    #[inline]
    pub fn div(&self, a: u16, b: u16) -> Result<u16, GfError> {
        if b == 0 {
            return Err(GfError::DivisionByZero);
        }
        if a == 0 {
            return Ok(0);
        }
        let group = self.group_order() as u32;
        let idx = self.log[a as usize] + group - self.log[b as usize];
        Ok(self.exp[idx as usize])
    }

    /// α^i, where α = x is the primitive element. The exponent is reduced
    /// modulo the group order, so any `i` is accepted.
    #[inline]
    pub fn alpha_pow(&self, i: i64) -> u16 {
        let group = self.group_order() as i64;
        let e = i.rem_euclid(group) as usize;
        self.exp[e]
    }

    /// The discrete logarithm of `x` to base α.
    ///
    /// # Errors
    ///
    /// Returns [`GfError::DivisionByZero`] for `x = 0`, which has no logarithm.
    #[inline]
    pub fn log(&self, x: u16) -> Result<u32, GfError> {
        if x == 0 {
            return Err(GfError::DivisionByZero);
        }
        Ok(self.log[x as usize])
    }

    /// `x · α^logc` for a constant whose non-zero log was looked up once by
    /// the caller: one exp load plus a single zero-branch. The hot-loop
    /// primitive behind the slice kernels in [`crate::MulTable`]'s module.
    #[inline]
    pub(crate) fn mul_exp_log(&self, x: u16, logc: usize) -> u16 {
        if x == 0 {
            0
        } else {
            self.exp[self.log[x as usize] as usize + logc]
        }
    }

    /// `x` raised to the (possibly negative) integer power `e`.
    pub fn pow(&self, x: u16, e: i64) -> Result<u16, GfError> {
        if x == 0 {
            return match e {
                0 => Ok(1),
                e if e > 0 => Ok(0),
                _ => Err(GfError::DivisionByZero),
            };
        }
        let group = self.group_order() as i64;
        let l = i64::from(self.log[x as usize]);
        let idx = (l * e).rem_euclid(group) as usize;
        Ok(self.exp[idx])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructs_all_supported_widths() {
        for m in 2..=16u8 {
            let f = Field::new(m).unwrap_or_else(|e| panic!("m={m}: {e}"));
            assert_eq!(f.order(), 1 << m);
        }
    }

    #[test]
    fn rejects_unsupported_widths() {
        assert_eq!(Field::new(1).unwrap_err(), GfError::UnsupportedWidth(1));
        assert_eq!(Field::new(17).unwrap_err(), GfError::UnsupportedWidth(17));
    }

    #[test]
    fn rejects_non_primitive_poly() {
        // x^4 + 1 is not even irreducible.
        assert!(matches!(
            Field::with_poly(4, 0x11),
            Err(GfError::NotPrimitive(_))
        ));
        // x^8 + x^4 + x^3 + x + 1 (0x11B, the AES polynomial) is irreducible
        // but NOT primitive: x has order 51 < 255.
        assert!(matches!(
            Field::with_poly(8, 0x11B),
            Err(GfError::NotPrimitive(_))
        ));
    }

    #[test]
    fn mul_matches_schoolbook_gf16() {
        // Carry-less multiply reduced by x^4 + x + 1, checked exhaustively.
        let f = Field::gf16();
        let slow = |a: u16, b: u16| -> u16 {
            let mut acc: u32 = 0;
            for bit in 0..4 {
                if b & (1 << bit) != 0 {
                    acc ^= u32::from(a) << bit;
                }
            }
            for bit in (4..8).rev() {
                if acc & (1 << bit) != 0 {
                    acc ^= 0x13 << (bit - 4);
                }
            }
            acc as u16
        };
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(f.mul(a, b), slow(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn inverse_round_trips_gf256() {
        let f = Field::gf256();
        for x in 1..256u32 {
            let x = x as u16;
            let ix = f.inv(x).unwrap();
            assert_eq!(f.mul(x, ix), 1, "x={x}");
        }
        assert_eq!(f.inv(0).unwrap_err(), GfError::DivisionByZero);
    }

    #[test]
    fn division_agrees_with_inverse_multiplication() {
        let f = Field::gf256();
        for a in [0u16, 1, 2, 77, 200, 255] {
            for b in [1u16, 3, 91, 254, 255] {
                assert_eq!(f.div(a, b).unwrap(), f.mul(a, f.inv(b).unwrap()));
            }
        }
        assert_eq!(f.div(5, 0).unwrap_err(), GfError::DivisionByZero);
    }

    #[test]
    fn alpha_pow_wraps_and_matches_log() {
        let f = Field::gf256();
        assert_eq!(f.alpha_pow(0), 1);
        assert_eq!(f.alpha_pow(1), 2);
        assert_eq!(f.alpha_pow(255), 1);
        assert_eq!(f.alpha_pow(-1), f.inv(2).unwrap());
        for i in 0..255i64 {
            let x = f.alpha_pow(i);
            assert_eq!(i64::from(f.log(x).unwrap()), i);
        }
    }

    #[test]
    fn pow_handles_zero_and_negatives() {
        let f = Field::gf256();
        assert_eq!(f.pow(0, 0).unwrap(), 1);
        assert_eq!(f.pow(0, 5).unwrap(), 0);
        assert!(f.pow(0, -1).is_err());
        let x = 37;
        assert_eq!(f.pow(x, 3).unwrap(), f.mul(f.mul(x, x), x));
        assert_eq!(f.mul(f.pow(x, -2).unwrap(), f.pow(x, 2).unwrap()), 1);
    }

    #[test]
    fn gf65536_tables_are_consistent() {
        let f = Field::gf65536();
        assert_eq!(f.order(), 65536);
        assert_eq!(
            f.mul(f.alpha_pow(40000), f.alpha_pow(40000)),
            f.alpha_pow(80000 - 65535)
        );
        let x = 0xBEEF;
        assert_eq!(f.mul(x, f.inv(x).unwrap()), 1);
    }

    #[test]
    fn check_rejects_out_of_range() {
        let f = Field::gf16();
        assert!(f.check(15).is_ok());
        assert!(matches!(
            f.check(16),
            Err(GfError::ElementOutOfRange {
                value: 16,
                order: 16
            })
        ));
    }

    #[test]
    fn field_equality_ignores_tables() {
        assert_eq!(Field::gf256(), Field::gf256());
        assert_ne!(Field::gf256(), Field::gf16());
    }
}
