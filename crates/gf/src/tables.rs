//! Default primitive reduction polynomials for GF(2^m).
//!
//! The entries are standard primitive polynomials (Lin & Costello, Appendix
//! B); each is validated at [`Field`](crate::Field) construction time by
//! checking that α = x generates the full multiplicative group.

/// Returns the default primitive polynomial for GF(2^m), including the
/// leading `x^m` term, or `None` when `m` is out of the supported range.
pub(crate) fn default_poly(m: u8) -> Option<u32> {
    Some(match m {
        2 => 0x7,      // x^2 + x + 1
        3 => 0xB,      // x^3 + x + 1
        4 => 0x13,     // x^4 + x + 1
        5 => 0x25,     // x^5 + x^2 + 1
        6 => 0x43,     // x^6 + x + 1
        7 => 0x89,     // x^7 + x^3 + 1
        8 => 0x11D,    // x^8 + x^4 + x^3 + x^2 + 1 (the classic RS-255 poly)
        9 => 0x211,    // x^9 + x^4 + 1
        10 => 0x409,   // x^10 + x^3 + 1
        11 => 0x805,   // x^11 + x^2 + 1
        12 => 0x1053,  // x^12 + x^6 + x^4 + x + 1
        13 => 0x201B,  // x^13 + x^4 + x^3 + x + 1
        14 => 0x4443,  // x^14 + x^10 + x^6 + x + 1
        15 => 0x8003,  // x^15 + x + 1
        16 => 0x1100B, // x^16 + x^12 + x^3 + x + 1 (used by GF(2^16) RS codecs)
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polys_have_correct_degree() {
        for m in 2..=16u8 {
            let p = default_poly(m).expect("supported width");
            assert_eq!(
                32 - p.leading_zeros(),
                u32::from(m) + 1,
                "degree of poly for m={m}"
            );
        }
    }

    #[test]
    fn out_of_range_is_none() {
        assert_eq!(default_poly(0), None);
        assert_eq!(default_poly(1), None);
        assert_eq!(default_poly(17), None);
    }
}
