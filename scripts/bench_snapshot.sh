#!/usr/bin/env sh
# Snapshot the perf benches into BENCH_<tag>.json (default tag: pr2).
#
#   scripts/bench_snapshot.sh [tag]
#
# Runs the perf_pipeline + perf_components + ablation_object_fetch
# criterion benches at smoke scale and records min/median/mean
# wall-clock per bench in microseconds, then runs the serve-mode
# worker sweep (dnastore bench-serve) and records its p50/p99/rps
# rows under a "serve" key.
# scripts/bench_baseline_<tag>.tsv (name<TAB>min_us per line — the
# numbers captured before an optimization lands) must exist: each entry
# gets "baseline_min" and "speedup_min" = baseline / current, which is
# how the repo's perf trajectory is tracked. See PERFORMANCE.md.
set -eu

TAG="${1:-pr2}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

# Fail fast on a missing baseline: a snapshot without its reference TSV
# would silently record no speedups, which defeats the point of the
# trajectory file.
BASELINE="scripts/bench_baseline_${TAG}.tsv"
if [ ! -f "$BASELINE" ]; then
    echo "error: baseline TSV '$BASELINE' not found." >&2
    echo "       Capture one first (name<TAB>min_us per line) or pass a tag" >&2
    echo "       that has a baseline: scripts/bench_snapshot.sh <tag>" >&2
    exit 1
fi

RAW="$(mktemp)"
SERVE="$(mktemp)"
ABL="$(mktemp)"
trap 'rm -f "$RAW" "$SERVE" "$ABL"' EXIT

DNA_REPRO_SCALE=smoke cargo bench -p dna-bench \
    --bench perf_pipeline --bench perf_components \
    --bench ablation_object_fetch | tee "$RAW"

awk -v tag="$TAG" -v baseline_file="$BASELINE" '
function to_us(v, u) {
    if (u == "ns") return v / 1000
    if (u == "ms") return v * 1000
    if (u == "s")  return v * 1000000
    return v # µs
}
BEGIN {
    while ((getline line < baseline_file) > 0) {
        n = split(line, f, "\t")
        if (n >= 2) base[f[1]] = f[2]
    }
    count = 0
}
$2 == "min" && $5 == "median" && $8 == "mean" {
    name[count] = $1
    minv[count]  = to_us($3, $4)
    medv[count]  = to_us($6, $7)
    meanv[count] = to_us($9, $10)
    count++
}
END {
    printf "{\n  \"tag\": \"%s\",\n  \"scale\": \"smoke\",\n  \"unit\": \"us\",\n  \"benches\": {\n", tag
    for (i = 0; i < count; i++) {
        printf "    \"%s\": {\"min\": %.3f, \"median\": %.3f, \"mean\": %.3f", \
            name[i], minv[i], medv[i], meanv[i]
        if (name[i] in base)
            printf ", \"baseline_min\": %.3f, \"speedup_min\": %.2f", \
                base[name[i]], base[name[i]] / minv[i]
        printf "}%s\n", (i < count - 1) ? "," : ""
    }
    printf "  },\n"
}' "$RAW" > "BENCH_${TAG}.json"

# Transcoder ablation: density (bits/base), constraint compliance, and
# exact-decode rate per (transcoder, channel preset), spliced in as the
# "ablation_transcoder" key. These are quality rows, not timings — see
# crates/bench/benches/ablation_transcoder.rs for the acceptance story
# (trellis at 100% compliance matches direct under nanopore-decay; the
# constraint-stressed channel breaks the unconstrained direct layout).
DNA_REPRO_SCALE=smoke cargo bench -p dna-bench \
    --bench ablation_transcoder | tee "$ABL"
printf '  "ablation_transcoder": ' >> "BENCH_${TAG}.json"
awk -F'\t' '
BEGIN { n = 0; printf "[" }
NF == 5 && $1 != "transcoder" {
    if (n++) printf ","
    printf "\n    {\"transcoder\": \"%s\", \"preset\": \"%s\", \"density_bits_per_base\": %s, \"compliance_pct\": %s, \"exact_decode_pct\": %s}", \
        $1, $2, $3, $4, $5
}
END { printf "\n  ],\n" }' "$ABL" >> "BENCH_${TAG}.json"

# Serve-mode worker sweep: p50/p99 latency, rps, MB/s, and coalesced
# fetch counts per worker count, spliced in as the "serve" key. The
# 8-vs-1-worker rps ratio is the throughput-service acceptance number.
cargo run --release -p dna-skew-cli --bin dnastore -- bench-serve \
    --json "$SERVE"
printf '  "serve": ' >> "BENCH_${TAG}.json"
cat "$SERVE" >> "BENCH_${TAG}.json"
printf '}\n' >> "BENCH_${TAG}.json"

echo "wrote BENCH_${TAG}.json"
