//! A minimal, self-contained drop-in for the subset of the `proptest` API
//! this workspace uses: the [`proptest!`] macro, range/`Just`/tuple/vec
//! strategies, `prop_map`/`prop_flat_map`/`prop_shuffle`, `any`,
//! `prop_assert*`, and `prop_assume!`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this stub instead of the real crate. Differences from real
//! proptest: cases are generated from a fixed deterministic seed, and
//! failing inputs are **not shrunk** — the failure message reports the
//! case number instead of a minimal counterexample.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// The RNG handed to strategies while generating a test case.
pub type TestRng = StdRng;

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should be retried.
    Reject(String),
}

impl TestCaseError {
    /// A failing case.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (filtered-out) case.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Shuffles generated collections.
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
        Self::Value: Shuffleable,
    {
        Shuffle { inner: self }
    }
}

/// Adapter returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Adapter returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Collections that [`Strategy::prop_shuffle`] can permute.
pub trait Shuffleable {
    /// Permutes the collection in place (Fisher–Yates).
    fn shuffle(&mut self, rng: &mut TestRng);
}

impl<T> Shuffleable for Vec<T> {
    fn shuffle(&mut self, rng: &mut TestRng) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

/// Adapter returned by [`Strategy::prop_shuffle`].
pub struct Shuffle<S> {
    inner: S,
}

impl<S: Strategy> Strategy for Shuffle<S>
where
    S::Value: Shuffleable,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let mut v = self.inner.sample(rng);
        v.shuffle(rng);
        v
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($n:ident . $i:tt),+ );)*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<f64>()
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Accepted size arguments for [`vec`]: an exact length or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `element` and whose
    /// length comes from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Sampling helper types.
pub mod sample {
    use super::{Arbitrary, TestRng};
    use rand::Rng;

    /// An index into a collection of not-yet-known size.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        /// Resolves the index against a collection of length `size`.
        ///
        /// # Panics
        ///
        /// Panics when `size` is zero, like the real proptest.
        pub fn index(&self, size: usize) -> usize {
            assert!(size > 0, "cannot index into an empty collection");
            self.0 % size
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.gen::<usize>())
        }
    }
}

/// Drives one property: repeatedly samples inputs and evaluates `run`,
/// panicking on the first failing case. Used by the [`proptest!`] macro.
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut run: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    // Deterministic seed per property so failures reproduce.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        hash = (hash ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rng = TestRng::seed_from_u64(hash);
    let mut passed = 0u32;
    let mut rejected = 0u64;
    let max_rejects = u64::from(config.cases) * 16 + 1024;
    let mut case = 0u64;
    while passed < config.cases {
        case += 1;
        match run(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "property {name}: too many rejected cases ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property {name} failed at case #{case}: {msg}")
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    /// Alias matching proptest's `prop::` module tree (`prop::sample::Index`,
    /// `prop::collection::vec`, …).
    pub use crate as prop;
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a property, failing the case (not panicking)
/// when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Rejects the current case (retried with fresh inputs) when the
/// assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` that samples inputs and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_property(stringify!($name), &config, |proptest_rng| {
                $(let $pat = $crate::Strategy::sample(&($strat), proptest_rng);)+
                $body
                ::core::result::Result::Ok(())
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u8..=9, y in 0usize..5) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_lengths_respect_size(v in collection::vec(0u16..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn flat_map_threads_values((n, v) in (1usize..5)
            .prop_flat_map(|n| (Just(n), collection::vec(0u8..4, n)))) {
            prop_assert_eq!(v.len(), n);
        }

        #[test]
        fn shuffle_preserves_multiset(v in Just((0..10usize).collect::<Vec<_>>()).prop_shuffle()) {
            let mut sorted = v.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (0..10usize).collect::<Vec<_>>());
        }

        #[test]
        fn assume_rejects_and_retries(n in 0u8..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn index_resolves(idx in any::<prop::sample::Index>()) {
            prop_assert!(idx.index(7) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        crate::run_property("always_fails", &ProptestConfig::with_cases(4), |_| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
