//! A minimal, self-contained drop-in for the subset of the `criterion` API
//! this workspace uses: [`Criterion::bench_function`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this stub instead of the real crate. It reports simple
//! min/median/mean wall-clock timings rather than criterion's full
//! statistical analysis.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How batched inputs are grouped between timings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Times one benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, called once per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            drop(out);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; only the routine is
    /// timed.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.samples.push(start.elapsed());
            drop(out);
        }
    }
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

fn human(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

impl Criterion {
    /// Sets how many samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut b);
        if b.samples.is_empty() {
            println!("{name:<40} (no samples)");
            return self;
        }
        b.samples.sort_unstable();
        let min = b.samples[0];
        let median = b.samples[b.samples.len() / 2];
        let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
        println!(
            "{name:<40} min {:>12}  median {:>12}  mean {:>12}  ({} samples)",
            human(min),
            human(median),
            human(mean),
            b.samples.len()
        );
        self
    }
}

/// Declares a benchmark group: a function running each target against a
/// shared [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = ::core::default::Default::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![0u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = quick
    }

    #[test]
    fn group_runs() {
        benches();
    }
}
