//! A minimal, self-contained drop-in for the subset of the `rand` 0.8 API
//! this workspace uses: [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`].
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this stub instead of the real crate. The generator is
//! xoshiro256++ seeded through splitmix64 — statistically solid for the
//! simulations here, deterministic in the seed, but **not** a reproduction
//! of the real `StdRng` (ChaCha12) output stream and not cryptographic.

#![forbid(unsafe_code)]

/// Low-level generator interface: a source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be sampled uniformly from its full value range.
pub trait Standard: Sized {
    /// Draws one uniformly random value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range that can be sampled uniformly, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// Panics when the range is empty, matching `rand`'s behavior.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        <f64 as Standard>::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded via splitmix64. (The real `rand::rngs::StdRng` is ChaCha12;
    /// only determinism and statistical quality are relied upon here.)
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            let mut sm = state;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let x: u8 = rng.gen_range(1u8..4);
            assert!((1..4).contains(&x));
            let y = rng.gen_range(0usize..=10);
            assert!(y <= 10);
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn f64_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn all_u8_values_reachable() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 256];
        for _ in 0..20_000 {
            seen[rng.gen::<u8>() as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
