//! A minimal, self-contained drop-in for the subset of the `rand_distr`
//! API this workspace uses: [`Distribution`] and the [`Gamma`]
//! distribution (Marsaglia–Tsang sampling).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors this stub instead of the real crate.

#![forbid(unsafe_code)]

use rand::{Rng, RngCore};
use std::fmt;

/// Types that can draw samples of `T` from an RNG.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Errors constructing a distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// A shape/scale parameter was non-positive or non-finite.
    InvalidParameter,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter")
    }
}

impl std::error::Error for Error {}

/// The Gamma distribution Γ(shape k, scale θ) with mean `k·θ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    scale: f64,
}

impl Gamma {
    /// Creates Γ(shape, scale).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidParameter`] when either parameter is
    /// non-positive or non-finite.
    pub fn new(shape: f64, scale: f64) -> Result<Gamma, Error> {
        let ok = |x: f64| x.is_finite() && x > 0.0;
        if !ok(shape) || !ok(scale) {
            return Err(Error::InvalidParameter);
        }
        Ok(Gamma { shape, scale })
    }
}

/// One standard-normal sample via Box–Muller (no state carried).
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// Γ(shape ≥ 1, 1) via Marsaglia–Tsang's squeeze method.
fn gamma_mt<R: RngCore + ?Sized>(shape: f64, rng: &mut R) -> f64 {
    debug_assert!(shape >= 1.0);
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen();
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v;
        }
        if u > 0.0 && u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

impl Distribution<f64> for Gamma {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.shape >= 1.0 {
            gamma_mt(self.shape, rng) * self.scale
        } else {
            // Boost: Γ(k) = Γ(k+1) · U^(1/k) for k < 1.
            let boost = gamma_mt(self.shape + 1.0, rng);
            let u: f64 = rng.gen();
            boost * u.max(f64::MIN_POSITIVE).powf(1.0 / self.shape) * self.scale
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Gamma::new(0.0, 1.0).is_err());
        assert!(Gamma::new(1.0, -1.0).is_err());
        assert!(Gamma::new(f64::NAN, 1.0).is_err());
        assert!(Gamma::new(6.0, 2.0).is_ok());
    }

    #[test]
    fn gamma_mean_and_variance_match() {
        // Γ(6, 2): mean 12, variance 24.
        let g = Gamma::new(6.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let n = 60_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 12.0).abs() < 0.15, "mean {mean}");
        assert!((var - 24.0).abs() < 1.5, "variance {var}");
    }

    #[test]
    fn small_shape_is_supported() {
        let g = Gamma::new(0.5, 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(10);
        let n = 40_000;
        let mean = (0..n).map(|_| g.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }
}
