//! `dna-skew`: a reproduction of *Managing Reliability Bias in DNA
//! Storage* (Lin, Tabatabaee, Pote, Jevdjic — ISCA '22).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Crate | Provides |
//! |---|---|
//! | [`gf`] | GF(2^m) arithmetic and polynomial helpers |
//! | [`reed_solomon`] | errors-and-erasures Reed–Solomon codes |
//! | [`strand`] | bases, strands, codecs, primers, indexes |
//! | [`align`] | edit distance, alignment, read clustering |
//! | [`channel`] | IDS noise, error profiles, Gamma coverage, read pools, sequencing backends |
//! | [`consensus`] | trace reconstruction and skew profiling |
//! | [`media`] | images, the JPEG-like codec, PSNR, bit ranking |
//! | [`crypto`] | ChaCha20 for end-to-end encrypted archives |
//! | [`parallel`] | deterministic scoped-thread fan-out |
//! | [`storage`] | the pipeline: Baseline / **Gini** / **DnaMapper** |
//! | [`object`] | streaming object store: survival capsules, manifest, primer-addressed fetch |
//! | [`chaos`] | adversarial fault injection, four-way verdicts, the silent-corruption hunt |
//! | [`server`] | service mode: bounded queue, pooled decode workers, fetch coalescing, loopback TCP |
//!
//! # Quick start
//!
//! Build a pipeline with the fluent builder, store a payload with Gini's
//! diagonal codeword interleaving, sequence it at 3% error and coverage
//! 8, and read it back:
//!
//! ```
//! use dna_skew::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let pipeline = Pipeline::builder()
//!     .params(CodecParams::tiny()?)
//!     .layout(Layout::Gini { excluded_rows: vec![] })
//!     .build()?;
//! let payload = b"molecule ends are reliable".to_vec();
//! let unit = pipeline.encode_unit(&payload)?;
//! let pool = pipeline.sequence(&unit, ErrorModel::uniform(0.03), CoverageModel::Fixed(8), 1);
//! let (decoded, report) = pipeline.decode_unit(&pool.at_coverage(8.0))?;
//! assert_eq!(&decoded[..payload.len()], &payload[..]);
//! assert!(report.is_error_free());
//! # Ok(())
//! # }
//! ```
//!
//! Read generation is pluggable: the simulator above is the
//! [`SimulatedSequencer`](channel::SimulatedSequencer) backend, and
//! [`TraceReplay`](channel::TraceReplay) replays recorded read pools
//! (wetlab traces, sequencer dumps) through the identical decode path:
//!
//! ```
//! use dna_skew::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let pipeline = Pipeline::builder().params(CodecParams::tiny()?).build()?;
//! let unit = pipeline.encode_unit(b"replayed")?;
//! // Record a pool once (here: simulated), then replay it later.
//! let recorded = pipeline.sequence(&unit, ErrorModel::ngs(0.003), CoverageModel::Fixed(6), 7);
//! let replay = TraceReplay::single(recorded);
//! let pool = pipeline.sequence_with(&replay, &unit, 0, 0 /* seed is ignored */);
//! let (decoded, _) = pipeline.decode_unit(&pool.clusters().to_vec())?;
//! assert_eq!(&decoded[..8], b"replayed");
//! # Ok(())
//! # }
//! ```
//!
//! Batches of units encode and decode in parallel (deterministically —
//! results are byte-identical at any thread count), and experiment
//! harnesses share one [`Scenario`](storage::Scenario) descriptor:
//!
//! ```
//! use dna_skew::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let pipeline = Pipeline::builder().params(CodecParams::tiny()?).build()?;
//! let payloads: Vec<Vec<u8>> = (0..4u8).map(|u| vec![u; 30]).collect();
//! let units = pipeline.encode_batch(&payloads)?;
//!
//! let scenario = Scenario::new(ErrorModel::uniform(0.02))
//!     .single_coverage(8.0)
//!     .seed(42);
//! let pools = pipeline.sequence_batch(&scenario.backend(), &units, scenario.seed);
//! let clusters: Vec<Vec<Cluster>> = pools.iter().map(|p| p.clusters().to_vec()).collect();
//! for (u, (decoded, report)) in pipeline.decode_batch(&clusters)?.iter().enumerate() {
//!     assert_eq!(decoded[..30], payloads[u][..], "unit {u}");
//!     assert!(report.is_error_free());
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dna_align as align;
pub use dna_channel as channel;
pub use dna_chaos as chaos;
pub use dna_consensus as consensus;
pub use dna_crypto as crypto;
pub use dna_gf as gf;
pub use dna_media as media;
pub use dna_object as object;
pub use dna_parallel as parallel;
pub use dna_reed_solomon as reed_solomon;
pub use dna_server as server;
pub use dna_storage as storage;
pub use dna_strand as strand;

/// The most commonly used types, for one-line imports.
pub mod prelude {
    pub use dna_align::{AnchoredClusterer, GreedyClusterer, ReadClusterer};
    pub use dna_channel::{
        AnonymousPool, BurstModel, ChannelModel, Cluster, CoverageModel, ErrorModel, IdsChannel,
        PcrBias, PositionProfile, ReadPool, SequencingBackend, SimulatedSequencer, TraceReplay,
    };
    pub use dna_chaos::{
        builtin_presets, run_campaign, ByteFault, CampaignConfig, ChaosReport, ChaosScenario,
        FaultPlan, PoolFault, Verdict, VerdictTally,
    };
    pub use dna_consensus::{
        BmaOneWay, BmaTwoWay, ConstrainedMedian, IterativeReconstructor, TraceReconstructor,
    };
    pub use dna_media::{GrayImage, JpegLikeCodec};
    pub use dna_object::{FetchOptions, FetchReport, Manifest, ObjectStore, StoreConfig};
    pub use dna_server::{serve_tcp, LocalClient, ServeConfig, Server};
    pub use dna_storage::{
        min_coverage, min_coverage_with, quality_sweep, Archive, ArchiveCodec, BaselineLayout,
        CodecParams, DecodeReport, FileEntry, GiniLayout, Layout, Pipeline, PipelineBuilder,
        PriorityLayout, ProtectionPlan, ProtectionPlanner, RankingPolicy, RecoveryPipeline,
        RecoveryReport, RetrieveOptions, Scenario, SkewProfile, UnitLayout,
    };
    pub use dna_strand::{Base, DnaString};
}
