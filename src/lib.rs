//! `dna-skew`: a reproduction of *Managing Reliability Bias in DNA
//! Storage* (Lin, Tabatabaee, Pote, Jevdjic — ISCA '22).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Crate | Provides |
//! |---|---|
//! | [`gf`] | GF(2^m) arithmetic and polynomial helpers |
//! | [`reed_solomon`] | errors-and-erasures Reed–Solomon codes |
//! | [`strand`] | bases, strands, codecs, primers, indexes |
//! | [`align`] | edit distance, alignment, read clustering |
//! | [`channel`] | IDS noise, error profiles, Gamma coverage, read pools |
//! | [`consensus`] | trace reconstruction and skew profiling |
//! | [`media`] | images, the JPEG-like codec, PSNR, bit ranking |
//! | [`crypto`] | ChaCha20 for end-to-end encrypted archives |
//! | [`storage`] | the pipeline: Baseline / **Gini** / **DnaMapper** |
//!
//! # Quick start
//!
//! ```
//! use dna_skew::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Store a payload with Gini's diagonal codeword interleaving,
//! // sequence it at 3% error and coverage 8, and read it back.
//! let pipeline = Pipeline::new(CodecParams::tiny()?, Layout::Gini { excluded_rows: vec![] })?;
//! let payload = b"molecule ends are reliable".to_vec();
//! let unit = pipeline.encode_unit(&payload)?;
//! let pool = pipeline.sequence(&unit, ErrorModel::uniform(0.03), CoverageModel::Fixed(8), 1);
//! let (decoded, report) = pipeline.decode_unit(&pool.at_coverage(8.0))?;
//! assert_eq!(&decoded[..payload.len()], &payload[..]);
//! assert!(report.is_error_free());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dna_align as align;
pub use dna_channel as channel;
pub use dna_consensus as consensus;
pub use dna_crypto as crypto;
pub use dna_gf as gf;
pub use dna_media as media;
pub use dna_reed_solomon as reed_solomon;
pub use dna_storage as storage;
pub use dna_strand as strand;

/// The most commonly used types, for one-line imports.
pub mod prelude {
    pub use dna_channel::{Cluster, CoverageModel, ErrorModel, IdsChannel, ReadPool};
    pub use dna_consensus::{
        BmaOneWay, BmaTwoWay, ConstrainedMedian, IterativeReconstructor, TraceReconstructor,
    };
    pub use dna_media::{GrayImage, JpegLikeCodec};
    pub use dna_storage::{
        min_coverage, quality_sweep, Archive, ArchiveCodec, CodecParams, DecodeReport,
        FileEntry, Layout, MinCoverageOptions, Pipeline, RankingPolicy, RetrieveOptions,
    };
    pub use dna_strand::{Base, DnaString};
}
