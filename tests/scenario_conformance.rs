//! The scenario conformance suite: a deterministic matrix of
//! {channel preset × layout × coverage} encode → sequence → decode runs
//! with pinned seeds, asserted against golden summary reports.
//!
//! Each cell's summary pins the FNV-1a hash of the decoded bytes plus the
//! erasure/correction/failure counts of the decode reports. The goldens
//! serve two contracts:
//!
//! 1. **Seed stability** — the uniform cells (and the pool hashes below)
//!    were captured from the release *before* the channel-model subsystem
//!    landed. They must never change: old seeds keep producing
//!    byte-identical pools and decodes through the uniform path.
//! 2. **Thread independence** — the whole matrix is recomputed under
//!    `DNA_SKEW_THREADS` ∈ {1, 2, 8} and must be identical. CI
//!    additionally runs the full test suite under 1 and 8 threads.
//!
//! Regenerating goldens after an *intentional* channel change:
//! `DNA_SKEW_BLESS=1 cargo test --test scenario_conformance -- --nocapture`
//! prints the computed lines; paste them over `GOLDEN_MATRIX`. Never
//! regenerate the `uniform` cells or the pool hashes — those are the
//! backward-compatibility contract.

use dna_skew::channel as dna_channel;
use dna_skew::prelude::*;
use dna_skew::storage::Scenario;
use dna_skew::strand::TranscoderSpec;
use std::sync::Mutex;

/// Serializes every test in this binary: the thread-invariance test
/// mutates `DNA_SKEW_THREADS` with `std::env::set_var`, and concurrent
/// setenv/getenv is undefined behavior on glibc, so nothing else may be
/// reading the environment (every `parallel_map` does) while it runs.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn env_guard() -> std::sync::MutexGuard<'static, ()> {
    ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// FNV-1a 64-bit, the suite's stable content fingerprint.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Hashes a pool's full structure: cluster sources, read boundaries, and
/// every base.
fn pool_hash(pool: &ReadPool) -> u64 {
    let mut bytes = Vec::new();
    for c in pool.clusters() {
        bytes.push(0xFE);
        bytes.extend_from_slice(&(c.source as u64).to_le_bytes());
        for r in &c.reads {
            bytes.push(0xFD);
            for &b in r.iter() {
                bytes.push(b.to_bits());
            }
        }
    }
    fnv64(&bytes)
}

/// The channel presets of the matrix. The `uniform` row is the pre-PR
/// behavior; its goldens are frozen.
fn presets() -> Vec<(&'static str, ChannelModel)> {
    vec![
        (
            "uniform:0.04",
            ChannelModel::uniform(ErrorModel::uniform(0.04)),
        ),
        ("nanopore-decay:0.06", ChannelModel::nanopore_decay(0.06)),
        ("pcr-skewed:0.04", ChannelModel::pcr_skewed(0.04)),
        ("dropout:0.04", ChannelModel::dropout_prone(0.04, 0.05)),
        ("bursty:0.04", ChannelModel::bursty(0.04)),
    ]
}

fn layouts() -> Vec<(&'static str, Layout)> {
    vec![
        ("baseline", Layout::Baseline),
        (
            "gini",
            Layout::Gini {
                excluded_rows: vec![],
            },
        ),
    ]
}

const COVERAGES: [f64; 2] = [6.0, 12.0];
const MATRIX_SEED: u64 = 0xC0FFEE;

/// 90 bytes = 3 tiny units, so the batch (parallel) paths are exercised.
fn matrix_payload() -> Vec<u8> {
    (0..90u32)
        .map(|i| (i.wrapping_mul(131) % 256) as u8)
        .collect()
}

/// Runs one cell of the matrix through the batch pipeline and summarizes
/// it: decoded-bytes hash + erasure/correction/failure totals.
fn cell_summary(
    preset: &str,
    channel: &ChannelModel,
    lname: &str,
    layout: &Layout,
    cov: f64,
) -> String {
    let pipeline = Pipeline::builder()
        .params(CodecParams::tiny().expect("tiny params"))
        .layout(layout.clone())
        .build()
        .expect("tiny pipeline");
    let scenario = Scenario::with_channel(channel.clone())
        .single_coverage(cov)
        .seed(MATRIX_SEED);
    scenario.validate().expect("matrix scenarios are valid");
    let units = pipeline.encode_chunked(&matrix_payload()).expect("encode");
    let pools = pipeline.sequence_batch(&scenario.backend(), &units, scenario.seed);
    let clusters: Vec<Vec<Cluster>> = pools.iter().map(|p| p.at_coverage(cov)).collect();
    let mut decoded = Vec::new();
    let (mut lost, mut corrected, mut failed) = (0usize, 0usize, 0usize);
    for (bytes, report) in pipeline.decode_batch(&clusters).expect("decode") {
        decoded.extend_from_slice(&bytes);
        lost += report.lost_columns;
        corrected += report.total_corrected();
        failed += report.failed_codewords();
    }
    format!(
        "preset={preset} layout={lname} cov={cov} hash={:#018x} lost={lost} corrected={corrected} failed={failed}",
        fnv64(&decoded)
    )
}

/// The planned-protection cell: a non-uniform [`ProtectionPlan`] on a
/// headroom geometry (GF(16), 6 rows, 8 + 4 columns — `tiny()` is
/// field-saturated and cannot host one), exercising the multi-rate
/// encode/decode path under the same pinned-seed contract as the rest of
/// the matrix.
fn planned_cell_summary() -> String {
    use dna_skew::storage::ProtectionPlan;
    let params = CodecParams::new(dna_skew::gf::Field::gf16(), 6, 8, 4, 4).expect("headroom");
    // Hot-tail plan at exactly the 6 × 4 density budget.
    let plan = ProtectionPlan::from_parities(vec![2, 2, 3, 4, 6, 7]).expect("plan");
    let pipeline = Pipeline::builder()
        .params(params)
        .layout(Layout::Baseline)
        .protection(plan)
        .build()
        .expect("planned pipeline");
    let channel = ChannelModel::nanopore_decay(0.06);
    let cov = 8.0;
    let scenario = Scenario::with_channel(channel)
        .single_coverage(cov)
        .seed(MATRIX_SEED);
    scenario.validate().expect("planned scenario is valid");
    let units = pipeline.encode_chunked(&matrix_payload()).expect("encode");
    let pools = pipeline.sequence_batch(&scenario.backend(), &units, scenario.seed);
    let clusters: Vec<Vec<Cluster>> = pools.iter().map(|p| p.at_coverage(cov)).collect();
    let mut decoded = Vec::new();
    let (mut lost, mut corrected, mut failed) = (0usize, 0usize, 0usize);
    for (bytes, report) in pipeline.decode_batch(&clusters).expect("decode") {
        decoded.extend_from_slice(&bytes);
        lost += report.lost_columns;
        corrected += report.total_corrected();
        failed += report.failed_codewords();
    }
    format!(
        "preset=nanopore-decay:0.06 layout=baseline+plan[2,2,3,4,6,7] cov={cov} hash={:#018x} lost={lost} corrected={corrected} failed={failed}",
        fnv64(&decoded)
    )
}

fn compute_matrix() -> Vec<String> {
    let mut out = Vec::new();
    for (preset, channel) in presets() {
        for (lname, layout) in layouts() {
            for cov in COVERAGES {
                out.push(cell_summary(preset, &channel, lname, &layout, cov));
            }
        }
    }
    out.push(planned_cell_summary());
    out
}

/// One transcoded cell: the tiny pipeline re-based onto a non-direct
/// [`TranscoderSpec`], run through the same pinned-seed encode →
/// sequence → decode loop. Constraint-respecting transcoders must keep
/// decoding deterministically whatever the strand layout.
fn transcoded_cell_summary(spec: TranscoderSpec, preset: &str, channel: &ChannelModel) -> String {
    let cov = 8.0;
    let pipeline = Pipeline::builder()
        .params(
            CodecParams::tiny()
                .expect("tiny params")
                .with_transcoder(spec),
        )
        .layout(Layout::Baseline)
        .build()
        .expect("transcoded tiny pipeline");
    let scenario = Scenario::with_channel(channel.clone())
        .single_coverage(cov)
        .seed(MATRIX_SEED)
        .transcoder(spec);
    scenario.validate().expect("matrix scenarios are valid");
    let units = pipeline.encode_chunked(&matrix_payload()).expect("encode");
    let pools = pipeline.sequence_batch(&scenario.backend(), &units, scenario.seed);
    let clusters: Vec<Vec<Cluster>> = pools.iter().map(|p| p.at_coverage(cov)).collect();
    let mut decoded = Vec::new();
    let (mut lost, mut corrected, mut failed) = (0usize, 0usize, 0usize);
    for (bytes, report) in pipeline.decode_batch(&clusters).expect("decode") {
        decoded.extend_from_slice(&bytes);
        lost += report.lost_columns;
        corrected += report.total_corrected();
        failed += report.failed_codewords();
    }
    format!(
        "transcoder={} preset={preset} cov={cov} hash={:#018x} lost={lost} corrected={corrected} failed={failed}",
        spec.name(),
        fnv64(&decoded)
    )
}

fn compute_transcoded_matrix() -> Vec<String> {
    let mut out = Vec::new();
    for spec in [
        TranscoderSpec::GcPadded,
        TranscoderSpec::Trellis,
        TranscoderSpec::Rotation,
    ] {
        for (preset, channel) in [
            ("nanopore-decay:0.06", ChannelModel::nanopore_decay(0.06)),
            (
                "constraint-stressed:0.06",
                ChannelModel::constraint_stressed(0.06),
            ),
        ] {
            out.push(transcoded_cell_summary(spec, preset, &channel));
        }
    }
    out
}

/// Golden transcoded-cell summaries at `MATRIX_SEED`. Regenerate after
/// an *intentional* transcoder layout change with `DNA_SKEW_BLESS=1`
/// like the main matrix — an unintentional diff means a transcoder's
/// base layout (and so every pool written with it) drifted.
const TRANSCODED_GOLDEN: [&str; 6] = [
    "transcoder=gc-padded preset=nanopore-decay:0.06 cov=8 hash=0x7441d7e2f2760db4 lost=0 corrected=4 failed=0",
    "transcoder=gc-padded preset=constraint-stressed:0.06 cov=8 hash=0x7441d7e2f2760db4 lost=0 corrected=5 failed=0",
    "transcoder=trellis preset=nanopore-decay:0.06 cov=8 hash=0x7441d7e2f2760db4 lost=1 corrected=7 failed=0",
    "transcoder=trellis preset=constraint-stressed:0.06 cov=8 hash=0x7441d7e2f2760db4 lost=1 corrected=13 failed=0",
    "transcoder=rotation preset=nanopore-decay:0.06 cov=8 hash=0x7441d7e2f2760db4 lost=0 corrected=5 failed=0",
    "transcoder=rotation preset=constraint-stressed:0.06 cov=8 hash=0x7441d7e2f2760db4 lost=0 corrected=4 failed=0",
];

/// Golden summaries. The four `preset=uniform` lines were captured from
/// the pre-channel-model release and freeze the uniform path's exact
/// behavior; the remaining lines pin the new presets going forward. The
/// final `+plan[…]` line pins the unequal-protection (multi-rate
/// Reed–Solomon) decode path.
const GOLDEN_MATRIX: [&str; 21] = [
    "preset=uniform:0.04 layout=baseline cov=6 hash=0x7441d7e2f2760db4 lost=0 corrected=3 failed=0",
    "preset=uniform:0.04 layout=baseline cov=12 hash=0x7441d7e2f2760db4 lost=1 corrected=6 failed=0",
    "preset=uniform:0.04 layout=gini cov=6 hash=0x7441d7e2f2760db4 lost=0 corrected=3 failed=0",
    "preset=uniform:0.04 layout=gini cov=12 hash=0x7441d7e2f2760db4 lost=1 corrected=6 failed=0",
    "preset=nanopore-decay:0.06 layout=baseline cov=6 hash=0x7441d7e2f2760db4 lost=0 corrected=6 failed=0",
    "preset=nanopore-decay:0.06 layout=baseline cov=12 hash=0x7441d7e2f2760db4 lost=0 corrected=6 failed=0",
    "preset=nanopore-decay:0.06 layout=gini cov=6 hash=0x7441d7e2f2760db4 lost=0 corrected=6 failed=0",
    "preset=nanopore-decay:0.06 layout=gini cov=12 hash=0x7441d7e2f2760db4 lost=0 corrected=6 failed=0",
    "preset=pcr-skewed:0.04 layout=baseline cov=6 hash=0x83db1b14f43e984d lost=6 corrected=12 failed=6",
    "preset=pcr-skewed:0.04 layout=baseline cov=12 hash=0x7441d7e2f2760db4 lost=2 corrected=13 failed=0",
    "preset=pcr-skewed:0.04 layout=gini cov=6 hash=0x38ec970fe822120b lost=6 corrected=28 failed=2",
    "preset=pcr-skewed:0.04 layout=gini cov=12 hash=0x7441d7e2f2760db4 lost=1 corrected=9 failed=0",
    "preset=dropout:0.04 layout=baseline cov=6 hash=0x7441d7e2f2760db4 lost=4 corrected=23 failed=0",
    "preset=dropout:0.04 layout=baseline cov=12 hash=0x7441d7e2f2760db4 lost=4 corrected=23 failed=0",
    "preset=dropout:0.04 layout=gini cov=6 hash=0x7441d7e2f2760db4 lost=4 corrected=25 failed=0",
    "preset=dropout:0.04 layout=gini cov=12 hash=0x7441d7e2f2760db4 lost=4 corrected=23 failed=0",
    "preset=bursty:0.04 layout=baseline cov=6 hash=0x7441d7e2f2760db4 lost=0 corrected=9 failed=0",
    "preset=bursty:0.04 layout=baseline cov=12 hash=0x7441d7e2f2760db4 lost=0 corrected=2 failed=0",
    "preset=bursty:0.04 layout=gini cov=6 hash=0x7441d7e2f2760db4 lost=0 corrected=7 failed=0",
    "preset=bursty:0.04 layout=gini cov=12 hash=0x7441d7e2f2760db4 lost=0 corrected=2 failed=0",
    "preset=nanopore-decay:0.06 layout=baseline+plan[2,2,3,4,6,7] cov=8 hash=0x56a12209d5564514 lost=0 corrected=8 failed=0",
];

/// The unlabeled-retrieval conformance matrix: 3 channel presets ×
/// 2 clusterers × 2 coverages, decoded through the full
/// anonymize → cluster → orient → demux → decode path on a
/// primer-wrapped tiny pipeline. Each cell pins the decoded-bytes hash
/// plus the recovery tallies (purity as an exact ratio, orphaned reads,
/// fragment merges, failed codewords).
fn recovery_presets() -> Vec<(&'static str, ChannelModel)> {
    vec![
        (
            "uniform:0.03",
            ChannelModel::uniform(ErrorModel::uniform(0.03)),
        ),
        ("nanopore-decay:0.05", ChannelModel::nanopore_decay(0.05)),
        ("dropout:0.03", ChannelModel::dropout_prone(0.03, 0.05)),
    ]
}

const RECOVERY_SEED: u64 = 0xDECAF;

fn recovery_cell_summary(
    preset: &str,
    channel: &ChannelModel,
    cname: &str,
    recovery: &RecoveryPipeline,
    cov: f64,
) -> String {
    let pipeline = Pipeline::builder()
        .params(
            CodecParams::tiny()
                .expect("tiny params")
                .with_primer_len(15),
        )
        .recovery(recovery.clone())
        .build()
        .expect("primered tiny pipeline");
    let scenario = Scenario::with_channel(channel.clone())
        .single_coverage(cov)
        .seed(RECOVERY_SEED)
        .unlabeled();
    scenario.validate().expect("matrix scenarios are valid");
    let units = pipeline.encode_chunked(&matrix_payload()).expect("encode");
    let pools = pipeline.sequence_batch(&scenario.backend(), &units, scenario.seed);
    let anonymous: Vec<AnonymousPool> = pools
        .iter()
        .enumerate()
        .map(|(u, p)| {
            AnonymousPool::from_clusters(
                &p.at_coverage(cov),
                dna_channel::unit_seed(scenario.anonymize_seed(0), u),
            )
        })
        .collect();
    let mut decoded = Vec::new();
    let mut merged = RecoveryReport::default();
    let mut failed = 0usize;
    for (bytes, report) in pipeline.decode_pool_batch(&anonymous).expect("decode") {
        decoded.extend_from_slice(&bytes);
        failed += report.failed_codewords();
        merged.merge_from(&report.recovery.expect("recovery stats present"));
    }
    format!(
        "preset={preset} clusterer={cname} cov={cov} hash={:#018x} purity={}/{} orphans={} \
         merges={} failed={failed}",
        fnv64(&decoded),
        merged.purity_num,
        merged.purity_den,
        merged.orphaned_reads,
        merged.duplicate_index_merges,
    )
}

fn compute_recovery_matrix() -> Vec<String> {
    let mut out = Vec::new();
    for (preset, channel) in recovery_presets() {
        for (cname, recovery) in [
            ("greedy", RecoveryPipeline::greedy(None)),
            ("anchored", RecoveryPipeline::anchored(None)),
        ] {
            for cov in COVERAGES {
                out.push(recovery_cell_summary(
                    preset, &channel, cname, &recovery, cov,
                ));
            }
        }
    }
    out
}

/// Golden recovery summaries, pinned at `RECOVERY_SEED`. Regenerate
/// after an intentional recovery/clustering change with
/// `DNA_SKEW_BLESS=1` exactly like the main matrix.
const RECOVERY_GOLDEN_MATRIX: [&str; 12] = [
    "preset=uniform:0.03 clusterer=greedy cov=6 hash=0x7441d7e2f2760db4 purity=260/273 orphans=0 merges=44 failed=0",
    "preset=uniform:0.03 clusterer=greedy cov=12 hash=0x7441d7e2f2760db4 purity=524/545 orphans=0 merges=84 failed=0",
    "preset=uniform:0.03 clusterer=anchored cov=6 hash=0x7441d7e2f2760db4 purity=252/273 orphans=0 merges=89 failed=0",
    "preset=uniform:0.03 clusterer=anchored cov=12 hash=0x7441d7e2f2760db4 purity=504/545 orphans=0 merges=178 failed=0",
    "preset=nanopore-decay:0.05 clusterer=greedy cov=6 hash=0xa7104be7035c34e9 purity=240/273 orphans=0 merges=147 failed=7",
    "preset=nanopore-decay:0.05 clusterer=greedy cov=12 hash=0x7441d7e2f2760db4 purity=476/545 orphans=0 merges=280 failed=0",
    "preset=nanopore-decay:0.05 clusterer=anchored cov=6 hash=0xb37ac8bff6bad04d purity=241/272 orphans=1 merges=159 failed=6",
    "preset=nanopore-decay:0.05 clusterer=anchored cov=12 hash=0x7441d7e2f2760db4 purity=470/544 orphans=1 merges=323 failed=0",
    "preset=dropout:0.03 clusterer=greedy cov=6 hash=0x64b3334c47a93d33 purity=240/248 orphans=0 merges=35 failed=6",
    "preset=dropout:0.03 clusterer=greedy cov=12 hash=0x7441d7e2f2760db4 purity=475/497 orphans=1 merges=95 failed=0",
    "preset=dropout:0.03 clusterer=anchored cov=6 hash=0xd2c3d20e7bedeb4c purity=235/247 orphans=1 merges=78 failed=6",
    "preset=dropout:0.03 clusterer=anchored cov=12 hash=0x121efa94b415e4d2 purity=469/497 orphans=1 merges=159 failed=6",
];

/// The object-store conformance cell: a deterministic store lifecycle
/// (create → put ×2 → delete → fetch) whose persisted manifest hash,
/// capsule tallies, and fetch receipt are pinned. The manifest text is
/// deterministic — capsule offsets derive from fixed record geometry and
/// primer pairs from the pool seed — so its FNV-1a hash is a stable
/// fingerprint of the entire on-disk format. A format change that is NOT
/// intentional shows up here first.
fn object_store_cell_summary() -> String {
    use dna_skew::object::{ObjectStore, StoreConfig};
    let dir = std::env::temp_dir().join(format!(
        "dna-skew-conformance-objstore-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut store =
        ObjectStore::create(&dir, StoreConfig::tiny().expect("tiny config")).expect("create");
    let alpha: Vec<u8> = (0..200u32)
        .map(|i| (i.wrapping_mul(131) % 256) as u8)
        .collect();
    let beta = vec![0u8; 300]; // zero-heavy: exercises the compressed path
    let a = store.put_bytes("alpha.bin", &alpha).expect("put alpha");
    let b = store.put_bytes("beta.bin", &beta).expect("put beta");
    store.delete(b).expect("delete beta");
    let mut fetched = Vec::new();
    let report = store.fetch(a, &mut fetched).expect("fetch alpha");
    assert_eq!(fetched, alpha, "object store round trip");
    let manifest = store.manifest();
    let summary = format!(
        "objects={} capsules={} manifest_hash={:#018x} fetch_capsules={} fetch_units={} fetch_reads={}",
        manifest.objects().len(),
        manifest.capsules().len(),
        manifest.hash(),
        report.capsules,
        report.units,
        report.reads,
    );
    let _ = std::fs::remove_dir_all(&dir);
    summary
}

/// Golden object-store summary. Regenerate after an *intentional* pool /
/// manifest format change with `DNA_SKEW_BLESS=1` like the other tables —
/// an unintentional diff here means the on-disk format drifted.
const OBJECT_GOLDEN: [&str; 1] = [
    "objects=2 capsules=7 manifest_hash=0xdfdb066fbf6496b9 fetch_capsules=3 fetch_units=7 fetch_reads=105",
];

/// The serve-mode conformance cell: an in-process server (4 decode
/// workers, bounded queue) over a tiny store, driven by a deterministic
/// mixed workload. Phase A seeds three objects sequentially; phase B
/// runs three *concurrent* clients, each with a fixed read-only trace;
/// phase C mutates and lists sequentially. Each client's concatenated
/// wire-encoded response stream is hashed — read-only concurrency means
/// every interleaving must produce byte-identical per-client streams,
/// whatever the worker count, thread count, or coalescing pattern.
fn serve_cell_summary() -> String {
    use dna_skew::object::{ObjectStore, StoreConfig};
    use dna_skew::server::protocol::{write_response, Request, Response};
    use dna_skew::server::{ServeConfig, Server};

    fn stream_hash(responses: &[Response]) -> u64 {
        let mut bytes = Vec::new();
        for response in responses {
            write_response(&mut bytes, response).expect("in-memory write");
        }
        fnv64(&bytes)
    }
    fn fetch(target: &str, recover: bool) -> Request {
        Request::Fetch {
            target: target.into(),
            recover,
        }
    }

    let dir =
        std::env::temp_dir().join(format!("dna-skew-conformance-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store =
        ObjectStore::create(&dir, StoreConfig::tiny().expect("tiny config")).expect("create");
    let server = Server::start(
        store,
        &ServeConfig {
            workers: 4,
            queue_depth: 16,
        },
    );
    let client = server.client();

    // Phase A: sequential puts — object ids are deterministic.
    let alpha: Vec<u8> = (0..200u32)
        .map(|i| (i.wrapping_mul(131) % 256) as u8)
        .collect();
    let beta = vec![0u8; 300]; // zero-heavy: exercises the compressed path
    let gamma: Vec<u8> = (0..150u32)
        .map(|i| (i.wrapping_mul(17) % 256) as u8)
        .collect();
    let puts = vec![
        client.put("alpha.bin", alpha),
        client.put("beta.bin", beta),
        client.put("gamma.bin", gamma),
    ];
    let seed_hash = stream_hash(&puts);

    // Phase B: concurrent clients, read-only fixed traces (direct
    // fetches, recovery fetches, listings, a miss).
    let traces: [Vec<Request>; 3] = [
        vec![
            fetch("alpha.bin", false),
            fetch("beta.bin", false),
            fetch("alpha.bin", true),
            Request::Ls,
        ],
        vec![
            fetch("beta.bin", false),
            fetch("gamma.bin", true),
            fetch("alpha.bin", false),
            fetch("alpha.bin", false),
        ],
        vec![
            fetch("gamma.bin", false),
            fetch("missing.bin", false),
            Request::Ls,
            fetch("beta.bin", true),
        ],
    ];
    let clients: Vec<_> = traces
        .into_iter()
        .map(|trace| {
            let client = server.client();
            std::thread::spawn(move || {
                let responses: Vec<_> = trace.into_iter().map(|r| client.call(r)).collect();
                stream_hash(&responses)
            })
        })
        .collect();
    let hashes: Vec<u64> = clients
        .into_iter()
        .map(|c| c.join().expect("serve client"))
        .collect();

    // Phase C: sequential mutation, then the post-state listing.
    let post = vec![
        client.del("gamma.bin"),
        client.fetch("gamma.bin", false),
        client.ls(),
    ];
    let post_hash = stream_hash(&post);

    drop(client);
    server.shutdown().expect("sole owner at shutdown");
    let _ = std::fs::remove_dir_all(&dir);
    format!(
        "serve seed={seed_hash:#018x} c0={:#018x} c1={:#018x} c2={:#018x} post={post_hash:#018x}",
        hashes[0], hashes[1], hashes[2],
    )
}

/// Golden serve-mode summary. Regenerate after an *intentional* wire or
/// store format change with `DNA_SKEW_BLESS=1`. A diff here without a
/// format change means serve-mode responses depend on scheduling — the
/// exact nondeterminism the worker/coalescing design must exclude.
const SERVE_GOLDEN: [&str; 1] = [
    "serve seed=0x3ee2939e38c27133 c0=0x69f3be19bc75f2ea c1=0x541c146eb91ac811 c2=0xaf16fb5fb53ace93 post=0x9d99a35056686f89",
];

/// The chaos-campaign conformance cell: every built-in adversarial
/// preset (pool faults and object-store byte faults) at a pinned seed
/// and a reduced trial count. Each line pins one scenario's four-way
/// verdict tally — exact / degraded / loud / silent. Two contracts:
///
/// 1. The whole campaign is deterministic in its seed (and, via the
///    invariance test below, in the thread count).
/// 2. The `silent=0` suffix on every line IS the silent-corruption
///    detector: any future change that lets wrong bytes through with a
///    clean bill of health flips a golden here before it ships.
fn compute_chaos_summary() -> Vec<String> {
    use dna_skew::chaos::{builtin_presets, run_campaign, CampaignConfig};
    let mut config = CampaignConfig::quick(CHAOS_SEED, 4).expect("tiny geometry");
    config.scratch =
        std::env::temp_dir().join(format!("dna-skew-conformance-chaos-{}", std::process::id()));
    let report = run_campaign(&builtin_presets(), &config).expect("campaign runs");
    let _ = std::fs::remove_dir_all(&config.scratch);
    assert_eq!(
        report.silent_corruptions(),
        0,
        "silent corruption in the conformance campaign"
    );
    report.summary_lines()
}

const CHAOS_SEED: u64 = 0xC4A05;

/// Golden chaos verdicts at `CHAOS_SEED`, 4 trials/scenario. Regenerate
/// after an *intentional* fault-model or decoder change with
/// `DNA_SKEW_BLESS=1`; a `silent` count above zero must never be
/// blessed — it is the defect the campaign exists to catch.
const CHAOS_GOLDEN: [&str; 10] = [
    "dropout-sustained exact=2 degraded=2 loud=0 silent=0",
    "index-burst exact=0 degraded=4 loud=0 silent=0",
    "contamination exact=0 degraded=4 loud=0 silent=0",
    "truncate-chimera exact=0 degraded=4 loud=0 silent=0",
    "near-duplicate exact=0 degraded=4 loud=0 silent=0",
    "torn-append exact=4 degraded=0 loud=0 silent=0",
    "header-flip exact=0 degraded=0 loud=4 silent=0",
    "strand-flip exact=0 degraded=0 loud=4 silent=0",
    "sidecar-corrupt exact=0 degraded=4 loud=0 silent=0",
    "sidecar-torn exact=0 degraded=4 loud=0 silent=0",
];

fn assert_matches(matrix: &[String], golden: &[&str], context: &str) {
    if std::env::var("DNA_SKEW_BLESS").is_ok() {
        for line in matrix {
            println!("    \"{line}\",");
        }
        return;
    }
    assert_eq!(matrix.len(), golden.len(), "{context}: matrix size");
    for (got, want) in matrix.iter().zip(golden.iter()) {
        assert_eq!(got, want, "{context}");
    }
}

fn assert_matches_golden(matrix: &[String], context: &str) {
    assert_matches(matrix, &GOLDEN_MATRIX, context);
}

#[test]
fn conformance_matrix_matches_golden_reports() {
    let _guard = env_guard();
    assert_matches_golden(&compute_matrix(), "default thread count");
}

#[test]
fn transcoded_matrix_matches_golden_reports() {
    let _guard = env_guard();
    assert_matches(
        &compute_transcoded_matrix(),
        &TRANSCODED_GOLDEN,
        "transcoded, default thread count",
    );
}

#[test]
fn transcoded_matrix_is_thread_count_invariant() {
    let _guard = env_guard();
    let original = std::env::var("DNA_SKEW_THREADS").ok();
    for threads in ["1", "8"] {
        std::env::set_var("DNA_SKEW_THREADS", threads);
        assert_matches(
            &compute_transcoded_matrix(),
            &TRANSCODED_GOLDEN,
            &format!("transcoded, DNA_SKEW_THREADS={threads}"),
        );
    }
    match original {
        Some(v) => std::env::set_var("DNA_SKEW_THREADS", v),
        None => std::env::remove_var("DNA_SKEW_THREADS"),
    }
}

#[test]
fn conformance_matrix_is_thread_count_invariant() {
    let _guard = env_guard();
    let original = std::env::var("DNA_SKEW_THREADS").ok();
    for threads in ["1", "2", "8"] {
        std::env::set_var("DNA_SKEW_THREADS", threads);
        assert_matches_golden(&compute_matrix(), &format!("DNA_SKEW_THREADS={threads}"));
    }
    match original {
        Some(v) => std::env::set_var("DNA_SKEW_THREADS", v),
        None => std::env::remove_var("DNA_SKEW_THREADS"),
    }
}

#[test]
fn object_store_matches_golden_report() {
    let _guard = env_guard();
    assert_matches(
        &[object_store_cell_summary()],
        &OBJECT_GOLDEN,
        "object store, default thread count",
    );
}

#[test]
fn object_store_is_thread_count_invariant() {
    let _guard = env_guard();
    let original = std::env::var("DNA_SKEW_THREADS").ok();
    for threads in ["1", "2", "8"] {
        std::env::set_var("DNA_SKEW_THREADS", threads);
        assert_matches(
            &[object_store_cell_summary()],
            &OBJECT_GOLDEN,
            &format!("object store, DNA_SKEW_THREADS={threads}"),
        );
    }
    match original {
        Some(v) => std::env::set_var("DNA_SKEW_THREADS", v),
        None => std::env::remove_var("DNA_SKEW_THREADS"),
    }
}

#[test]
fn chaos_campaign_matches_golden_verdicts() {
    let _guard = env_guard();
    assert_matches(
        &compute_chaos_summary(),
        &CHAOS_GOLDEN,
        "chaos, default thread count",
    );
}

#[test]
fn chaos_campaign_is_thread_count_invariant() {
    let _guard = env_guard();
    let original = std::env::var("DNA_SKEW_THREADS").ok();
    for threads in ["1", "2", "8"] {
        std::env::set_var("DNA_SKEW_THREADS", threads);
        assert_matches(
            &compute_chaos_summary(),
            &CHAOS_GOLDEN,
            &format!("chaos, DNA_SKEW_THREADS={threads}"),
        );
    }
    match original {
        Some(v) => std::env::set_var("DNA_SKEW_THREADS", v),
        None => std::env::remove_var("DNA_SKEW_THREADS"),
    }
}

#[test]
fn serve_mode_matches_golden_report() {
    let _guard = env_guard();
    assert_matches(
        &[serve_cell_summary()],
        &SERVE_GOLDEN,
        "serve, default thread count",
    );
}

#[test]
fn serve_mode_is_thread_count_invariant() {
    let _guard = env_guard();
    let original = std::env::var("DNA_SKEW_THREADS").ok();
    for threads in ["1", "2", "8"] {
        std::env::set_var("DNA_SKEW_THREADS", threads);
        assert_matches(
            &[serve_cell_summary()],
            &SERVE_GOLDEN,
            &format!("serve, DNA_SKEW_THREADS={threads}"),
        );
    }
    match original {
        Some(v) => std::env::set_var("DNA_SKEW_THREADS", v),
        None => std::env::remove_var("DNA_SKEW_THREADS"),
    }
}

#[test]
fn recovery_matrix_matches_golden_reports() {
    let _guard = env_guard();
    assert_matches(
        &compute_recovery_matrix(),
        &RECOVERY_GOLDEN_MATRIX,
        "default thread count",
    );
}

#[test]
fn recovery_matrix_is_thread_count_invariant() {
    let _guard = env_guard();
    let original = std::env::var("DNA_SKEW_THREADS").ok();
    for threads in ["1", "2", "8"] {
        std::env::set_var("DNA_SKEW_THREADS", threads);
        assert_matches(
            &compute_recovery_matrix(),
            &RECOVERY_GOLDEN_MATRIX,
            &format!("recovery, DNA_SKEW_THREADS={threads}"),
        );
    }
    match original {
        Some(v) => std::env::set_var("DNA_SKEW_THREADS", v),
        None => std::env::remove_var("DNA_SKEW_THREADS"),
    }
}

/// The uniform-preset pool fingerprints, captured from the pre-channel-
/// model release: `SimulatedSequencer::new` (and the whole
/// `ChannelModel::uniform` path) must reproduce these pools byte-for-byte
/// for old seeds, under both fixed and Gamma coverage.
#[test]
fn uniform_pools_are_byte_identical_to_pre_channel_release() {
    let _guard = env_guard();
    let pipeline = Pipeline::new(CodecParams::tiny().unwrap(), Layout::Baseline).unwrap();
    let payload: Vec<u8> = (0..30u8)
        .map(|i| i.wrapping_mul(37).wrapping_add(11))
        .collect();
    let unit = pipeline.encode_unit(&payload).unwrap();
    let golden: [(u64, f64, usize, u64, u64); 3] = [
        (1, 0.05, 4, 0xe1a3a5aab06db97a, 0xa97409cb4be96881),
        (42, 0.09, 8, 0x494fe3200abfa53b, 0x3d66dc5dfc93bc8b),
        (0xBEEF, 0.02, 6, 0xd303b7a9914464fd, 0x4461e57048468653),
    ];
    for (seed, p, cov, fixed_hash, gamma_hash) in golden {
        let fixed = pipeline.sequence(
            &unit,
            ErrorModel::uniform(p),
            CoverageModel::Fixed(cov),
            seed,
        );
        assert_eq!(
            pool_hash(&fixed),
            fixed_hash,
            "fixed-coverage pool drifted at seed={seed} p={p} cov={cov}"
        );
        let gamma = pipeline.sequence(
            &unit,
            ErrorModel::uniform(p),
            CoverageModel::Gamma {
                mean: cov as f64,
                shape: 6.0,
            },
            seed,
        );
        assert_eq!(
            pool_hash(&gamma),
            gamma_hash,
            "gamma-coverage pool drifted at seed={seed} p={p} cov={cov}"
        );
        // The explicit channel-model route is the same bytes again.
        let via_model = pipeline.sequence_model(
            &unit,
            &ChannelModel::uniform(ErrorModel::uniform(p)),
            CoverageModel::Fixed(cov),
            seed,
        );
        assert_eq!(pool_hash(&via_model), fixed_hash);
    }
}
