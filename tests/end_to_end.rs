//! Cross-crate integration: full store → sequence → cluster → consensus →
//! decode round-trips under every layout and channel profile.

use dna_skew::prelude::*;

fn laptop_payload(pipeline: &Pipeline) -> Vec<u8> {
    (0..pipeline.payload_capacity())
        .map(|i| (i.wrapping_mul(131) % 256) as u8)
        .collect()
}

#[test]
fn all_layouts_survive_ngs_noise_at_laptop_scale() {
    let params = CodecParams::laptop().unwrap();
    for layout in [
        Layout::Baseline,
        Layout::Gini {
            excluded_rows: vec![],
        },
        Layout::Gini {
            excluded_rows: vec![0, 29],
        },
        Layout::DnaMapper,
    ] {
        let pipeline = Pipeline::new(params.clone(), layout.clone()).unwrap();
        let payload = laptop_payload(&pipeline);
        let unit = pipeline.encode_unit(&payload).unwrap();
        let pool = pipeline.sequence(
            &unit,
            ErrorModel::ngs(0.01),
            CoverageModel::Gamma {
                mean: 10.0,
                shape: 6.0,
            },
            13,
        );
        let (decoded, report) = pipeline.decode_unit(&pool.at_coverage(10.0)).unwrap();
        assert_eq!(decoded, payload, "layout {:?}", layout);
        assert!(report.is_error_free(), "layout {:?}", layout);
    }
}

#[test]
fn nanopore_noise_is_recovered_with_sufficient_coverage() {
    let params = CodecParams::laptop().unwrap();
    let pipeline = Pipeline::new(
        params,
        Layout::Gini {
            excluded_rows: vec![],
        },
    )
    .unwrap();
    let payload = laptop_payload(&pipeline);
    let unit = pipeline.encode_unit(&payload).unwrap();
    let pool = pipeline.sequence(
        &unit,
        ErrorModel::nanopore(0.12),
        CoverageModel::Fixed(16),
        17,
    );
    let (decoded, report) = pipeline.decode_unit(&pool.at_coverage(16.0)).unwrap();
    assert_eq!(decoded, payload);
    assert!(report.is_error_free());
    // Nanopore noise actually exercises the RS layer.
    assert!(report.total_corrected() > 0);
}

#[test]
fn gini_decodes_at_coverage_where_baseline_fails() {
    // The paper's headline Fig. 12 effect, pinned at one operating point.
    let params = CodecParams::laptop().unwrap();
    let payload: Vec<u8> = (0..6240).map(|i| (i * 7 % 255) as u8).collect();
    let model = ErrorModel::uniform(0.09);
    let mut exact = [true, true];
    for (i, layout) in [
        Layout::Baseline,
        Layout::Gini {
            excluded_rows: vec![],
        },
    ]
    .into_iter()
    .enumerate()
    {
        let pipeline = Pipeline::new(params.clone(), layout).unwrap();
        let unit = pipeline.encode_unit(&payload).unwrap();
        let mut successes = 0;
        for seed in 0..3u64 {
            let pool = pipeline.sequence(&unit, model, CoverageModel::Fixed(10), 100 + seed);
            let (decoded, report) = pipeline.decode_unit(&pool.at_coverage(10.0)).unwrap();
            if report.is_error_free() && decoded == payload {
                successes += 1;
            }
        }
        exact[i] = successes == 3;
    }
    assert!(
        !exact[0] && exact[1],
        "at 9% error / coverage 10: baseline all-exact={} gini all-exact={}",
        exact[0],
        exact[1]
    );
}

#[test]
fn real_clustering_agrees_with_perfect_clustering_at_low_noise() {
    // Swap the paper's perfect clustering for the greedy edit-distance
    // clusterer and verify the pipeline still decodes.
    use dna_skew::align::GreedyClusterer;
    use dna_skew::channel::Cluster;

    let params =
        dna_skew::storage::CodecParams::new(dna_skew::gf::Field::gf256(), 12, 40, 10, 8).unwrap();
    let pipeline = Pipeline::new(params, Layout::Baseline).unwrap();
    let payload: Vec<u8> = (0..pipeline.payload_capacity()).map(|i| i as u8).collect();
    let unit = pipeline.encode_unit(&payload).unwrap();
    let pool = pipeline.sequence(&unit, ErrorModel::uniform(0.02), CoverageModel::Fixed(6), 3);

    // Flatten reads, strip labels, re-cluster from scratch.
    let labeled = pool.labeled_reads();
    let reads: Vec<DnaString> = labeled.iter().map(|(_, r)| r.clone()).collect();
    let result = GreedyClusterer::new(12).cluster(&reads);
    let clusters: Vec<Cluster> = result
        .clusters
        .iter()
        .enumerate()
        .map(|(i, members)| Cluster {
            source: i,
            reads: members.iter().map(|&r| reads[r].clone()).collect(),
        })
        .collect();
    let (decoded, report) = pipeline.decode_unit(&clusters).unwrap();
    assert_eq!(decoded, payload);
    assert!(report.is_error_free());
}

#[test]
fn failure_injection_truncated_and_duplicated_reads() {
    let params = CodecParams::laptop().unwrap();
    let pipeline = Pipeline::new(
        params,
        Layout::Gini {
            excluded_rows: vec![],
        },
    )
    .unwrap();
    let payload = laptop_payload(&pipeline);
    let unit = pipeline.encode_unit(&payload).unwrap();
    let pool = pipeline.sequence(
        &unit,
        ErrorModel::uniform(0.04),
        CoverageModel::Fixed(10),
        29,
    );
    let mut clusters = pool.clusters().to_vec();
    // Truncate some reads hard, duplicate others, clear a few clusters.
    for (i, c) in clusters.iter_mut().enumerate() {
        match i % 17 {
            0 => c.reads.truncate(2),
            1 => {
                let dup = c.reads[0].clone();
                c.reads.extend(std::iter::repeat_n(dup, 3));
            }
            2 => {
                let short = c.reads[0].slice(0, 30);
                c.reads.push(short);
            }
            3 => c.reads.clear(),
            _ => {}
        }
    }
    let (decoded, report) = pipeline.decode_unit(&clusters).unwrap();
    assert_eq!(decoded, payload, "erasure capacity must absorb the abuse");
    assert!(report.lost_columns >= 15);
    assert!(report.is_error_free());
}
