//! Integration: the builder API, the batch unit codec, and pluggable
//! sequencing backends, through the public facade.

use dna_skew::prelude::*;
use dna_skew::storage::StorageError;

fn tiny(layout: Layout) -> Pipeline {
    Pipeline::builder()
        .params(CodecParams::tiny().unwrap())
        .layout(layout)
        .build()
        .unwrap()
}

fn batch_payloads(pipeline: &Pipeline, n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|u| {
            (0..pipeline.payload_capacity())
                .map(|i| (i * 31 + u * 97 + 7) as u8)
                .collect()
        })
        .collect()
}

#[test]
fn builder_validation_errors_surface_through_the_facade() {
    // Bad RS parameters: 25 columns exceed GF(16)'s 15-symbol codewords.
    assert!(matches!(
        Pipeline::builder()
            .field(dna_skew::gf::Field::gf16())
            .rows(6)
            .data_cols(20)
            .parity_cols(5)
            .index_bits(6)
            .build(),
        Err(StorageError::InvalidParams(_))
    ));
    // Out-of-range excluded row.
    assert!(matches!(
        Pipeline::builder()
            .params(CodecParams::tiny().unwrap())
            .layout(Layout::Gini {
                excluded_rows: vec![99]
            })
            .build(),
        Err(StorageError::InvalidParams(_))
    ));
    // Zero-length explicit primers.
    let empty = dna_skew::strand::Primer::from_strand(DnaString::new());
    assert!(matches!(
        Pipeline::builder()
            .params(CodecParams::tiny().unwrap())
            .primers(empty.clone(), empty)
            .build(),
        Err(StorageError::InvalidParams(_))
    ));
    // No geometry at all.
    assert!(Pipeline::builder().build().is_err());
}

#[test]
fn batch_round_trip_matches_per_unit_for_all_layouts() {
    for layout in [
        Layout::Baseline,
        Layout::Gini {
            excluded_rows: vec![],
        },
        Layout::DnaMapper,
    ] {
        let pipeline = tiny(layout.clone());
        let payloads = batch_payloads(&pipeline, 6);

        // Encode: the batch must be byte-identical to per-unit calls.
        let batch_units = pipeline.encode_batch(&payloads).unwrap();
        for (u, payload) in payloads.iter().enumerate() {
            assert_eq!(
                batch_units[u],
                pipeline.encode_unit(payload).unwrap(),
                "layout {layout:?} unit {u}"
            );
        }

        // Sequence every unit, then decode as a batch and per unit.
        let backend = SimulatedSequencer::new(ErrorModel::uniform(0.02), CoverageModel::Fixed(8));
        let pools = pipeline.sequence_batch(&backend, &batch_units, 42);
        assert_eq!(pools.len(), batch_units.len());
        let per_unit_clusters: Vec<Vec<Cluster>> =
            pools.iter().map(|p| p.clusters().to_vec()).collect();
        let decoded_batch = pipeline.decode_batch(&per_unit_clusters).unwrap();
        for (u, (decoded, report)) in decoded_batch.iter().enumerate() {
            let (serial_decoded, serial_report) =
                pipeline.decode_unit(&per_unit_clusters[u]).unwrap();
            assert_eq!(decoded, &serial_decoded, "layout {layout:?} unit {u}");
            assert_eq!(report, &serial_report, "layout {layout:?} unit {u}");
            assert_eq!(decoded, &payloads[u], "layout {layout:?} unit {u}");
            assert!(report.is_error_free(), "layout {layout:?} unit {u}");
        }
    }
}

#[test]
fn batch_results_are_identical_at_any_thread_count() {
    // parallel_map_with slices the same work across explicit thread
    // budgets; the batch API is built on the same primitive.
    let pipeline = tiny(Layout::Gini {
        excluded_rows: vec![],
    });
    let payloads = batch_payloads(&pipeline, 9);
    let reference: Vec<_> = payloads
        .iter()
        .map(|p| pipeline.encode_unit(p).unwrap())
        .collect();
    for threads in [1usize, 2, 3, 8] {
        let got = dna_skew::parallel::parallel_map_with(payloads.len(), threads, |u| {
            pipeline.encode_unit(&payloads[u]).unwrap()
        });
        assert_eq!(got, reference, "threads = {threads}");
    }
}

#[test]
fn batch_sequencing_is_deterministic_and_per_unit_independent() {
    let pipeline = tiny(Layout::Baseline);
    let payloads = batch_payloads(&pipeline, 4);
    let units = pipeline.encode_batch(&payloads).unwrap();
    let backend = SimulatedSequencer::new(ErrorModel::uniform(0.05), CoverageModel::Fixed(5));
    let a = pipeline.sequence_batch(&backend, &units, 7);
    let b = pipeline.sequence_batch(&backend, &units, 7);
    let c = pipeline.sequence_batch(&backend, &units, 8);
    for u in 0..units.len() {
        assert_eq!(a[u].clusters(), b[u].clusters(), "unit {u}");
        assert_ne!(a[u].clusters(), c[u].clusters(), "unit {u}");
    }
    // Unit 0's single-unit path matches its batch realization.
    let solo = pipeline.sequence(
        &units[0],
        ErrorModel::uniform(0.05),
        CoverageModel::Fixed(5),
        7,
    );
    assert_eq!(solo.clusters(), a[0].clusters());
}

#[test]
fn trace_replay_round_trips_a_recorded_batch() {
    let pipeline = tiny(Layout::DnaMapper);
    let payloads = batch_payloads(&pipeline, 3);
    let units = pipeline.encode_batch(&payloads).unwrap();

    // Record pools from the simulator, then replay them through the
    // identical decode path — the real-trace scenario.
    let sim = SimulatedSequencer::new(ErrorModel::ngs(0.005), CoverageModel::Fixed(6));
    let recorded = pipeline.sequence_batch(&sim, &units, 11);
    let replay = TraceReplay::new(recorded.clone());
    assert_eq!(replay.name(), "trace-replay");

    // The replay ignores seeds: any seed yields the recorded reads.
    let replayed = pipeline.sequence_batch(&replay, &units, 0xFEED);
    for (u, pool) in replayed.iter().enumerate() {
        assert_eq!(pool.clusters(), recorded[u].clusters(), "unit {u}");
    }
    let clusters: Vec<Vec<Cluster>> = replayed.iter().map(|p| p.clusters().to_vec()).collect();
    for (u, (decoded, report)) in pipeline.decode_batch(&clusters).unwrap().iter().enumerate() {
        assert_eq!(decoded, &payloads[u], "unit {u}");
        assert!(report.is_error_free(), "unit {u}");
    }
}

#[test]
fn trace_replay_from_labeled_reads_supports_external_dumps() {
    // The wetlab-shaped flow: labeled (cluster, read) pairs from an
    // external source become a replayable pool.
    let pipeline = tiny(Layout::Baseline);
    let payload: Vec<u8> = (0..30).collect();
    let unit = pipeline.encode_unit(&payload).unwrap();
    let pool = pipeline.sequence(&unit, ErrorModel::uniform(0.02), CoverageModel::Fixed(7), 3);
    let labeled = pool.labeled_reads();

    let replay = TraceReplay::from_labeled_reads(labeled, unit.len());
    let replayed = pipeline.sequence_with(&replay, &unit, 0, 0);
    let (decoded, report) = pipeline.decode_unit(replayed.clusters()).unwrap();
    assert_eq!(&decoded[..30], &payload[..]);
    assert!(report.is_error_free());
}

#[test]
fn builder_decode_options_become_the_default() {
    // Forced erasures configured at build time apply to every decode.
    let pipeline = Pipeline::builder()
        .params(CodecParams::tiny().unwrap())
        .layout(Layout::Gini {
            excluded_rows: vec![],
        })
        .decode_options(RetrieveOptions {
            forced_erasures: vec![10, 11, 12],
            ..RetrieveOptions::default()
        })
        .build()
        .unwrap();
    let payload: Vec<u8> = (0..30).map(|i| i * 3).collect();
    let unit = pipeline.encode_unit(&payload).unwrap();
    let pool = pipeline.sequence(&unit, ErrorModel::noiseless(), CoverageModel::Fixed(3), 5);
    let (decoded, report) = pipeline.decode_unit(pool.clusters()).unwrap();
    assert_eq!(decoded[..30], payload[..]);
    assert!(report.is_error_free());
    assert_eq!(
        report.lost_columns, 3,
        "forced erasures must apply by default"
    );
}
