//! Integration: the reliability-skew phenomena that motivate the paper,
//! measured through the public API end to end.

use dna_skew::consensus::profile::dna_skew_profile;
use dna_skew::prelude::*;
use dna_skew::storage::CodecParams;

#[test]
fn skew_appears_in_all_reconstruction_algorithms() {
    // Fig. 3/4/5 in one: one-way rises, two-way and iterative peak mid.
    let model = ErrorModel::uniform(0.08);
    let l = 124; // a laptop-scale strand length

    let one = dna_skew_profile(&BmaOneWay::default(), l, 5, model, 300, 42);
    let last_quarter: f64 = one.per_position[3 * l / 4..].iter().sum();
    let first_quarter: f64 = one.per_position[..l / 4].iter().sum();
    assert!(last_quarter > 2.0 * first_quarter);

    for (name, prof) in [
        (
            "two-way",
            dna_skew_profile(&BmaTwoWay::default(), l, 5, model, 300, 42),
        ),
        (
            "iterative",
            dna_skew_profile(&IterativeReconstructor::default(), l, 5, model, 300, 42),
        ),
    ] {
        let peak = prof.peak_position();
        assert!(
            (l / 4..3 * l / 4).contains(&peak),
            "{name}: peak at {peak} of {l}"
        );
        assert!(prof.middle_to_ends_ratio() > 1.5, "{name}");
    }
}

#[test]
fn per_codeword_errors_peak_in_middle_rows_for_baseline_only() {
    // Fig. 11 through the full pipeline: baseline concentrates corrected
    // errors in middle rows; Gini spreads them evenly; total error mass is
    // comparable (the curve flattens, the area stays).
    let params = CodecParams::laptop().unwrap();
    let payload: Vec<u8> = (0..6240).map(|i| (i % 256) as u8).collect();
    let mut series = Vec::new();
    for layout in [
        Layout::Baseline,
        Layout::Gini {
            excluded_rows: vec![],
        },
    ] {
        let pipeline = Pipeline::new(params.clone(), layout).unwrap();
        let unit = pipeline.encode_unit(&payload).unwrap();
        let mut per_cw = vec![0usize; params.rows()];
        for seed in 0..3u64 {
            let pool = pipeline.sequence(
                &unit,
                ErrorModel::uniform(0.09),
                CoverageModel::Fixed(20),
                900 + seed,
            );
            let (_, report) = pipeline.decode_unit(&pool.at_coverage(20.0)).unwrap();
            assert!(report.is_error_free());
            for (k, c) in report.corrected_per_codeword().iter().enumerate() {
                per_cw[k] += c;
            }
        }
        series.push(per_cw);
    }
    let (baseline, gini) = (&series[0], &series[1]);
    let rows = baseline.len();
    // Baseline: middle third ≫ outer thirds.
    let mid: usize = baseline[rows / 3..2 * rows / 3].iter().sum();
    let ends: usize =
        baseline[..rows / 3].iter().sum::<usize>() + baseline[2 * rows / 3..].iter().sum::<usize>();
    assert!(
        mid * 2 > ends * 3,
        "baseline mid {mid} vs ends {ends} (expected strong mid concentration)"
    );
    // Gini: flat — max within 2x of mean.
    let gmax = *gini.iter().max().unwrap() as f64;
    let gmean = gini.iter().sum::<usize>() as f64 / rows as f64;
    assert!(gmax < 2.0 * gmean, "gini max {gmax} vs mean {gmean}");
    // Equal areas within 25%.
    let (b_total, g_total): (usize, usize) = (baseline.iter().sum(), gini.iter().sum());
    let ratio = b_total as f64 / g_total as f64;
    assert!((0.75..1.33).contains(&ratio), "area ratio {ratio}");
}

#[test]
fn index_is_stored_at_the_most_reliable_location() {
    // The ordering index cannot be ECC-protected (paper §2.2), so the
    // pipeline banks on its position at the strand front. Verify the
    // decode loses far fewer indexes than it would if the index lived
    // mid-strand: invalid/conflicting indexes should be rare even at
    // nanopore noise.
    let params = CodecParams::laptop().unwrap();
    let pipeline = Pipeline::new(params, Layout::Baseline).unwrap();
    let payload = vec![0x5Au8; 6240];
    let unit = pipeline.encode_unit(&payload).unwrap();
    let pool = pipeline.sequence(
        &unit,
        ErrorModel::nanopore(0.12),
        CoverageModel::Fixed(12),
        31,
    );
    let (_, report) = pipeline.decode_unit(&pool.at_coverage(12.0)).unwrap();
    let troubled = report.invalid_indexes + report.index_conflicts + report.lost_columns;
    assert!(
        troubled <= 255 / 10,
        "too many index casualties at 12% noise: {troubled}"
    );
}
