//! Property and error-path suite for the streaming object store.
//!
//! The core property: the capsule-streaming path (`ObjectStore::put` →
//! `fetch`) is byte-identical to the in-memory [`ArchiveCodec`] path for
//! the same payload, across seeds, payload sizes, chunking boundaries,
//! encryption, and `DNA_SKEW_THREADS` ∈ {1, 2, 8}. Error paths are typed:
//! truncated manifests surface [`StorageError::ManifestCorrupt`], lost
//! manifests [`StorageError::ManifestMissing`] (with
//! [`ObjectStore::rebuild_manifest`] as the documented fallback),
//! tombstoned fetches [`StorageError::ObjectNotFound`], and mid-stream
//! reader/writer failures [`StorageError::Io`] without corrupting the
//! store.

use dna_skew::object::{MANIFEST_FILE, POOL_FILE};
use dna_skew::prelude::*;
use dna_skew::storage::StorageError;
use proptest::prelude::*;
use std::io::{Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Serializes tests that mutate `DNA_SKEW_THREADS` (setenv during
/// concurrent getenv is UB on glibc; every `parallel_map` reads it).
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn env_guard() -> std::sync::MutexGuard<'static, ()> {
    ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A unique scratch directory per call: proptest cases within one test
/// run concurrently-ish and must never share a pool.
fn tmp_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "dna-skew-objtest-{}-{tag}-{}",
        std::process::id(),
        DIR_COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

fn payload_from_seed(seed: u64, len: usize) -> Vec<u8> {
    let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect()
}

/// The in-memory reference path: the same payload through [`ArchiveCodec`]
/// (encode to units, decode from perfect coverage-1 clusters).
fn archive_round_trip(payload: &[u8], cipher: Option<([u8; 32], [u8; 12])>) -> Vec<u8> {
    let pipeline = Pipeline::builder()
        .params(CodecParams::tiny().expect("tiny params"))
        .layout(Layout::Gini {
            excluded_rows: vec![],
        })
        .build()
        .expect("tiny pipeline");
    let mut codec = ArchiveCodec::new(pipeline, RankingPolicy::Sequential);
    if let Some((key, nonce)) = cipher {
        codec = codec.with_cipher(key, nonce);
    }
    let archive = Archive::new(vec![FileEntry::new("payload", payload.to_vec())])
        .expect("single-file archive");
    let units = codec.encode(&archive).expect("archive encode");
    let clusters: Vec<Vec<Cluster>> = units
        .iter()
        .map(|u| {
            ReadPool::from_strands(u.strands().iter().cloned())
                .clusters()
                .to_vec()
        })
        .collect();
    let (decoded, _) = codec
        .decode(&clusters, &RetrieveOptions::default())
        .expect("archive decode");
    decoded
        .file("payload")
        .expect("payload entry")
        .bytes
        .clone()
}

/// The streaming path: the same payload through an [`ObjectStore`].
fn store_round_trip(payload: &[u8], key: Option<[u8; 32]>) -> (Vec<u8>, u64) {
    let dir = tmp_dir("prop");
    let mut config = StoreConfig::tiny().expect("tiny config");
    if let Some(k) = key {
        config = config.with_key(k);
    }
    let mut store = dna_skew::object::ObjectStore::create(&dir, config).expect("create");
    let id = store
        .put("payload", &mut std::io::Cursor::new(payload))
        .expect("put");
    let mut out = Vec::new();
    store.fetch(id, &mut out).expect("fetch");
    let hash = store.manifest().hash();
    let _ = std::fs::remove_dir_all(&dir);
    (out, hash)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Streaming put → fetch returns exactly the bytes the in-memory
    /// ArchiveCodec path returns (both equal the original payload), for
    /// any seed and any size across capsule boundaries (tiny capsules
    /// hold 90 bytes; 0..=400 spans zero to five capsules).
    #[test]
    fn streaming_store_matches_in_memory_archive(
        seed in any::<u64>(),
        len in 0usize..400,
    ) {
        let payload = payload_from_seed(seed, len);
        let from_archive = archive_round_trip(&payload, None);
        let (from_store, _) = store_round_trip(&payload, None);
        prop_assert_eq!(&from_archive, &payload);
        prop_assert_eq!(&from_store, &payload);
        prop_assert_eq!(from_store, from_archive);
    }

    /// The same equivalence under encryption: the store's per-capsule
    /// `seek_block` discipline and the archive's single-stream cipher both
    /// recover the plaintext.
    #[test]
    fn encrypted_streaming_matches_encrypted_archive(
        seed in any::<u64>(),
        len in 1usize..300,
    ) {
        let payload = payload_from_seed(seed, len);
        let key = {
            let mut k = [0u8; 32];
            for (i, b) in k.iter_mut().enumerate() {
                b.clone_from(&(seed.to_le_bytes()[i % 8].wrapping_add(i as u8)));
            }
            k
        };
        let from_archive = archive_round_trip(&payload, Some((key, [9u8; 12])));
        let (from_store, _) = store_round_trip(&payload, Some(key));
        prop_assert_eq!(&from_archive, &payload);
        prop_assert_eq!(from_store, from_archive);
    }

    /// Reopening from disk (sidecar manifest) and recovering from the
    /// super-capsule (sidecar deleted) both fetch identical bytes.
    #[test]
    fn reopen_and_super_capsule_recovery_are_identical(
        seed in any::<u64>(),
        len in 1usize..250,
    ) {
        let payload = payload_from_seed(seed, len);
        let dir = tmp_dir("reopen");
        let mut store =
            dna_skew::object::ObjectStore::create(&dir, StoreConfig::tiny().expect("config"))
                .expect("create");
        let id = store.put_bytes("payload", &payload).expect("put");
        drop(store);
        let reopened = dna_skew::object::ObjectStore::open(&dir).expect("reopen");
        prop_assert_eq!(reopened.get(id).expect("sidecar fetch"), payload.clone());
        let sidecar_hash = reopened.manifest().hash();
        drop(reopened);
        std::fs::remove_file(dir.join(MANIFEST_FILE)).expect("drop sidecar");
        let recovered = dna_skew::object::ObjectStore::open(&dir).expect("super-capsule open");
        prop_assert_eq!(recovered.manifest().hash(), sidecar_hash);
        prop_assert_eq!(recovered.get(id).expect("recovered fetch"), payload);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// One deterministic store lifecycle (two puts, one delete, one fetch),
/// returning the manifest hash and the fetched bytes — the unit the
/// thread-invariance matrix below pins.
fn lifecycle_fingerprint() -> (u64, Vec<u8>) {
    let dir = tmp_dir("threads");
    let mut store =
        dna_skew::object::ObjectStore::create(&dir, StoreConfig::tiny().expect("config"))
            .expect("create");
    let alpha = payload_from_seed(0xA1FA, 333);
    let beta = payload_from_seed(0xBE7A, 120);
    let a = store.put_bytes("alpha", &alpha).expect("put alpha");
    let b = store.put_bytes("beta", &beta).expect("put beta");
    store.delete(b).expect("delete beta");
    let fetched = store.get(a).expect("fetch alpha");
    assert_eq!(fetched, alpha);
    let hash = store.manifest().hash();
    let _ = std::fs::remove_dir_all(&dir);
    (hash, fetched)
}

/// The whole put → commit → fetch lifecycle is thread-count invariant:
/// encode and decode fan out over `DNA_SKEW_THREADS`, and the persisted
/// manifest (hash included) must not depend on it.
#[test]
fn store_lifecycle_is_thread_count_invariant() {
    let _guard = env_guard();
    let original = std::env::var("DNA_SKEW_THREADS").ok();
    let reference = lifecycle_fingerprint();
    for threads in ["1", "2", "8"] {
        std::env::set_var("DNA_SKEW_THREADS", threads);
        assert_eq!(
            lifecycle_fingerprint(),
            reference,
            "DNA_SKEW_THREADS={threads}"
        );
    }
    match original {
        Some(v) => std::env::set_var("DNA_SKEW_THREADS", v),
        None => std::env::remove_var("DNA_SKEW_THREADS"),
    }
}

/// The recovery-path fetch (capsule-scoped cluster → orient → demux →
/// decode) returns the same bytes as the direct fetch.
#[test]
fn recovery_fetch_is_byte_identical_to_direct_fetch() {
    let dir = tmp_dir("recovery");
    let mut store =
        dna_skew::object::ObjectStore::create(&dir, StoreConfig::tiny().expect("config"))
            .expect("create");
    let payload = payload_from_seed(7, 270);
    let id = store.put_bytes("payload", &payload).expect("put");
    let mut direct = Vec::new();
    store.fetch(id, &mut direct).expect("direct");
    let mut recovered = Vec::new();
    store
        .fetch_with(
            id,
            &mut recovered,
            &dna_skew::object::FetchOptions { via_recovery: true },
        )
        .expect("via recovery");
    assert_eq!(direct, payload);
    assert_eq!(recovered, payload);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_sidecar_manifest_is_manifest_corrupt() {
    let dir = tmp_dir("truncated");
    let mut store =
        dna_skew::object::ObjectStore::create(&dir, StoreConfig::tiny().expect("config"))
            .expect("create");
    store.put_bytes("payload", &[1, 2, 3]).expect("put");
    drop(store);
    // Cut the sidecar mid-body: the CRC line is gone.
    let text = std::fs::read_to_string(dir.join(MANIFEST_FILE)).expect("read");
    let cut: String = text.lines().take(4).collect::<Vec<_>>().join("\n");
    std::fs::write(dir.join(MANIFEST_FILE), cut).expect("truncate");
    assert!(matches!(
        dna_skew::object::ObjectStore::open(&dir),
        Err(StorageError::ManifestCorrupt { .. })
    ));
    // The documented fallback rebuilds from capsule headers alone.
    std::fs::remove_file(dir.join(MANIFEST_FILE)).expect("drop sidecar");
    let (rebuilt, report) = dna_skew::object::ObjectStore::rebuild_manifest(&dir).expect("rebuild");
    assert_eq!(report.objects, 1);
    let id = rebuilt.object_id("payload").expect("rebuilt name index");
    assert_eq!(rebuilt.get(id).expect("fetch after rebuild"), vec![1, 2, 3]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn empty_pool_directory_is_typed_missing() {
    let dir = tmp_dir("missing");
    // No pool at all → plain Io (nothing to open)…
    assert!(matches!(
        dna_skew::object::ObjectStore::open(&dir),
        Err(StorageError::Io(_))
    ));
    // …while a pool whose super-capsules are gone and whose sidecar was
    // lost is the typed ManifestMissing (covered in depth in the crate
    // tests); here: header-only pool file.
    std::fs::create_dir_all(&dir).expect("mkdir");
    let mut store =
        dna_skew::object::ObjectStore::create(&dir, StoreConfig::tiny().expect("config"))
            .expect("create");
    store.put_bytes("payload", &[9; 40]).expect("put");
    drop(store);
    std::fs::remove_file(dir.join(MANIFEST_FILE)).expect("drop sidecar");
    // Keep only the pool header: every capsule (data and manifest) gone.
    let raw = std::fs::read(dir.join(POOL_FILE)).expect("read pool");
    std::fs::write(dir.join(POOL_FILE), &raw[..46]).expect("truncate pool");
    assert!(matches!(
        dna_skew::object::ObjectStore::open(&dir),
        Err(StorageError::ManifestMissing)
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_pool_is_typed_pool_truncated() {
    let dir = tmp_dir("torn-pool");
    let mut store =
        dna_skew::object::ObjectStore::create(&dir, StoreConfig::tiny().expect("config"))
            .expect("create");
    let id = store
        .put_bytes("payload", &payload_from_seed(3, 200))
        .expect("put");
    drop(store);
    // Locate the last data capsule via the sidecar, then chop the pool a
    // few bytes into that record — a torn append / external truncation.
    let text = std::fs::read_to_string(dir.join(MANIFEST_FILE)).expect("sidecar");
    let last = Manifest::from_text(&text)
        .expect("sidecar parses")
        .capsules()
        .last()
        .expect("data capsule")
        .offset;
    let raw = std::fs::read(dir.join(POOL_FILE)).expect("pool");
    std::fs::write(dir.join(POOL_FILE), &raw[..last as usize + 10]).expect("chop");

    // Sidecar intact: the store opens (metadata is fine), but fetching
    // the damaged object is the typed truncation — never a short or
    // garbage payload — stamped with the torn record's offset.
    let store = dna_skew::object::ObjectStore::open(&dir).expect("open via sidecar");
    match store.get(id) {
        Err(StorageError::PoolTruncated { offset, .. }) => assert_eq!(offset, last),
        other => panic!("expected PoolTruncated from fetch, got {other:?}"),
    }
    drop(store);
    // Sidecar gone: super-capsule recovery and the explicit rebuild both
    // scan the pool and hit the same typed wall at the same offset.
    std::fs::remove_file(dir.join(MANIFEST_FILE)).expect("drop sidecar");
    match dna_skew::object::ObjectStore::open(&dir) {
        Err(StorageError::PoolTruncated { offset, .. }) => assert_eq!(offset, last),
        other => panic!("expected PoolTruncated from open, got {other:?}"),
    }
    match dna_skew::object::ObjectStore::rebuild_manifest(&dir) {
        Err(StorageError::PoolTruncated { offset, .. }) => assert_eq!(offset, last),
        other => panic!("expected PoolTruncated from rebuild, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tombstone_survives_manifest_rebuild() {
    let dir = tmp_dir("tombstone-rebuild");
    let kept_payload = payload_from_seed(11, 150);
    let mut store =
        dna_skew::object::ObjectStore::create(&dir, StoreConfig::tiny().expect("config"))
            .expect("create");
    let doomed = store
        .put_bytes("doomed", &payload_from_seed(7, 120))
        .expect("put doomed");
    let kept = store.put_bytes("kept", &kept_payload).expect("put kept");
    store.delete(doomed).expect("delete");
    drop(store);

    // Rebuild from capsule headers alone: the tombstone capsule must be
    // replayed — the deleted object stays deleted, its bytes are not
    // resurrected, and the survivor is untouched.
    std::fs::remove_file(dir.join(MANIFEST_FILE)).expect("drop sidecar");
    let (rebuilt, report) = dna_skew::object::ObjectStore::rebuild_manifest(&dir).expect("rebuild");
    assert_eq!(report.tombstones, 1);
    assert_eq!(report.objects, 1, "only the live object is recovered live");
    match rebuilt.get(doomed) {
        Err(StorageError::ObjectNotFound { id, tombstoned }) => {
            assert_eq!(id, doomed);
            assert!(tombstoned, "rebuild must keep the tombstone, not resurrect");
        }
        other => panic!("expected tombstoned ObjectNotFound, got {other:?}"),
    }
    assert_eq!(rebuilt.get(kept).expect("kept survives"), kept_payload);
    drop(rebuilt);

    // The rebuilt sidecar persists the tombstone across a plain reopen.
    let reopened = dna_skew::object::ObjectStore::open(&dir).expect("reopen");
    assert!(matches!(
        reopened.get(doomed),
        Err(StorageError::ObjectNotFound {
            tombstoned: true,
            ..
        })
    ));
    assert_eq!(
        reopened.get(kept).expect("kept still fetches"),
        kept_payload
    );
    let tombstoned: Vec<&str> = reopened
        .list()
        .iter()
        .filter(|o| o.tombstone)
        .map(|o| o.name.as_str())
        .collect();
    assert_eq!(tombstoned, ["doomed"]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn tombstoned_fetch_is_typed() {
    let dir = tmp_dir("tombstone");
    let mut store =
        dna_skew::object::ObjectStore::create(&dir, StoreConfig::tiny().expect("config"))
            .expect("create");
    let id = store.put_bytes("doomed", &[5; 60]).expect("put");
    store.delete(id).expect("delete");
    match store.get(id) {
        Err(StorageError::ObjectNotFound {
            id: got,
            tombstoned,
        }) => {
            assert_eq!(got, id);
            assert!(tombstoned);
        }
        other => panic!("expected tombstoned ObjectNotFound, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A reader that fails with an I/O error after yielding some bytes.
struct FailingReader {
    yielded: usize,
    fail_after: usize,
}

impl Read for FailingReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.yielded >= self.fail_after {
            return Err(std::io::Error::other("synthetic mid-stream read failure"));
        }
        let n = buf.len().min(self.fail_after - self.yielded);
        buf[..n].fill(0xAB);
        self.yielded += n;
        Ok(n)
    }
}

/// A writer that fails after accepting some bytes.
struct FailingWriter {
    accepted: usize,
    fail_after: usize,
}

impl Write for FailingWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.accepted + buf.len() > self.fail_after {
            return Err(std::io::Error::other("synthetic mid-stream write failure"));
        }
        self.accepted += buf.len();
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn mid_stream_reader_failure_leaves_the_store_consistent() {
    let dir = tmp_dir("failread");
    let mut store =
        dna_skew::object::ObjectStore::create(&dir, StoreConfig::tiny().expect("config"))
            .expect("create");
    // Fails partway into the second capsule (tiny capsules hold 90 B).
    let err = store
        .put(
            "broken",
            &mut FailingReader {
                yielded: 0,
                fail_after: 130,
            },
        )
        .expect_err("put must propagate the reader failure");
    assert!(matches!(err, StorageError::Io(_)), "{err:?}");
    // The manifest never registered the object…
    assert!(store.object_id("broken").is_none());
    assert!(store.manifest().objects().is_empty());
    // …and the store still accepts and serves new objects.
    let payload = payload_from_seed(3, 200);
    let id = store.put_bytes("good", &payload).expect("subsequent put");
    assert_eq!(store.get(id).expect("fetch"), payload);
    // A reopened store (fresh scan of the same files) agrees.
    drop(store);
    let reopened = dna_skew::object::ObjectStore::open(&dir).expect("reopen");
    assert_eq!(reopened.get(id).expect("fetch after reopen"), payload);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn mid_stream_writer_failure_is_io_and_retryable() {
    let dir = tmp_dir("failwrite");
    let mut store =
        dna_skew::object::ObjectStore::create(&dir, StoreConfig::tiny().expect("config"))
            .expect("create");
    let payload = payload_from_seed(11, 250);
    let id = store.put_bytes("payload", &payload).expect("put");
    let err = store
        .fetch(
            id,
            &mut FailingWriter {
                accepted: 0,
                fail_after: 100,
            },
        )
        .expect_err("fetch must propagate the writer failure");
    assert!(matches!(err, StorageError::Io(_)), "{err:?}");
    // The store is read-only during fetch: retrying with a good writer
    // succeeds.
    let mut out = Vec::new();
    store.fetch(id, &mut out).expect("retry");
    assert_eq!(out, payload);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fetch_cost_scales_with_object_not_pool() {
    let dir = tmp_dir("scaling");
    let mut store =
        dna_skew::object::ObjectStore::create(&dir, StoreConfig::tiny().expect("config"))
            .expect("create");
    let small = payload_from_seed(1, 60);
    let small_id = store.put_bytes("small", &small).expect("put small");
    // Grow the pool well past the small object.
    for i in 0..6 {
        store
            .put_bytes(&format!("filler-{i}"), &payload_from_seed(100 + i, 350))
            .expect("put filler");
    }
    let mut out = Vec::new();
    let report = store.fetch(small_id, &mut out).expect("fetch small");
    assert_eq!(out, small);
    assert_eq!(
        report.capsules, 1,
        "a one-capsule object reads one capsule no matter how big the pool is"
    );
    assert_eq!(report.units, 2, "60 bytes = two 30-byte tiny units");
    let _ = std::fs::remove_dir_all(&dir);
}
