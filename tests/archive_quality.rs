//! Integration: encrypted image archives, graceful degradation ordering,
//! and directory recovery under stress.

use dna_skew::prelude::*;

fn make_archive(codec: &JpegLikeCodec) -> (Archive, Vec<GrayImage>) {
    let images = vec![
        GrayImage::synthetic_photo(48, 40, 1),
        GrayImage::plasma(40, 40, 2),
    ];
    let files = images
        .iter()
        .enumerate()
        .map(|(i, img)| FileEntry::new(format!("img{i}"), codec.encode(img).unwrap()))
        .collect();
    (Archive::new(files).unwrap(), images)
}

fn mean_psnr(codec: &JpegLikeCodec, images: &[GrayImage], retrieved: &Archive) -> f64 {
    images
        .iter()
        .enumerate()
        .map(|(i, img)| {
            let bytes = retrieved
                .file(&format!("img{i}"))
                .map(|f| f.bytes.clone())
                .unwrap_or_default();
            let got = codec.decode_with_expected(&bytes, img.width(), img.height());
            img.psnr(&got).min(60.0)
        })
        .sum::<f64>()
        / images.len() as f64
}

#[test]
fn dnamapper_archive_survives_and_degrades_monotonically_in_coverage() {
    let img_codec = JpegLikeCodec::new(80).unwrap();
    let (archive, images) = make_archive(&img_codec);
    let params = CodecParams::laptop().unwrap();
    let pipeline = Pipeline::new(params, Layout::DnaMapper).unwrap();
    let storage = ArchiveCodec::new(pipeline, RankingPolicy::PositionPriority).with_encryption(9);
    let units = storage.encode(&archive).unwrap();
    let pools = storage.sequence(
        &units,
        ErrorModel::uniform(0.09),
        CoverageModel::Gamma {
            mean: 16.0,
            shape: 6.0,
        },
        55,
    );
    let mut quality = Vec::new();
    for cov in [16.0, 12.0, 8.0] {
        let clusters: Vec<_> = pools.iter().map(|p| p.at_coverage(cov)).collect();
        match storage.decode(&clusters, &RetrieveOptions::default()) {
            Ok((retrieved, _)) => quality.push(mean_psnr(&img_codec, &images, &retrieved)),
            Err(_) => quality.push(0.0),
        }
    }
    assert!(
        quality[0] >= quality[1] - 1.0 && quality[1] >= quality[2] - 1.0,
        "PSNR should fall (roughly) monotonically with coverage: {quality:?}"
    );
    // At full coverage the archive must be pristine.
    assert!(quality[0] > 40.0, "full-coverage quality {quality:?}");
}

#[test]
fn directory_survives_when_files_are_damaged() {
    // DnaMapper gives the directory the highest priority: under noise that
    // corrupts file tails, names and sizes must still be recoverable.
    let img_codec = JpegLikeCodec::new(80).unwrap();
    let (archive, _) = make_archive(&img_codec);
    let params = CodecParams::laptop().unwrap();
    let pipeline = Pipeline::new(params, Layout::DnaMapper).unwrap();
    let storage = ArchiveCodec::new(pipeline, RankingPolicy::PositionPriority);
    let units = storage.encode(&archive).unwrap();
    let pools = storage.sequence(
        &units,
        ErrorModel::uniform(0.10),
        CoverageModel::Gamma {
            mean: 9.0,
            shape: 6.0,
        },
        66,
    );
    let clusters: Vec<_> = pools.iter().map(|p| p.clusters().to_vec()).collect();
    let (retrieved, reports) = storage
        .decode(&clusters, &RetrieveOptions::default())
        .expect("directory must be reconstructable at this stress level");
    // The decode is allowed to be lossy in content…
    assert!(reports.iter().any(|r| !r.is_error_free()) || retrieved == archive);
    // …but metadata must hold.
    assert_eq!(retrieved.files().len(), archive.files().len());
    for (a, b) in archive.files().iter().zip(retrieved.files()) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.bytes.len(), b.bytes.len());
    }
}

#[test]
fn encryption_changes_stored_strands_but_not_results() {
    let img_codec = JpegLikeCodec::new(70).unwrap();
    let (archive, _) = make_archive(&img_codec);
    let params = CodecParams::laptop().unwrap();
    let make = |seed: Option<u64>| {
        let pipeline = Pipeline::new(params.clone(), Layout::DnaMapper).unwrap();
        let mut codec = ArchiveCodec::new(pipeline, RankingPolicy::PositionPriority);
        if let Some(s) = seed {
            codec = codec.with_encryption(s);
        }
        codec
    };
    let plain_units = make(None).encode(&archive).unwrap();
    let enc_units = make(Some(4)).encode(&archive).unwrap();
    assert_ne!(
        plain_units, enc_units,
        "ciphertext must differ from plaintext"
    );

    let storage = make(Some(4));
    let pools = storage.sequence(
        &enc_units,
        ErrorModel::noiseless(),
        CoverageModel::Fixed(2),
        1,
    );
    let clusters: Vec<_> = pools.iter().map(|p| p.clusters().to_vec()).collect();
    let (retrieved, _) = storage
        .decode(&clusters, &RetrieveOptions::default())
        .unwrap();
    assert_eq!(retrieved, archive);
}

#[test]
fn sequential_and_priority_policies_store_identical_content() {
    let img_codec = JpegLikeCodec::new(70).unwrap();
    let (archive, _) = make_archive(&img_codec);
    let params = CodecParams::laptop().unwrap();
    for (layout, policy) in [
        (Layout::Baseline, RankingPolicy::Sequential),
        (
            Layout::Gini {
                excluded_rows: vec![],
            },
            RankingPolicy::Sequential,
        ),
        (Layout::DnaMapper, RankingPolicy::PositionPriority),
    ] {
        let pipeline = Pipeline::new(params.clone(), layout).unwrap();
        let storage = ArchiveCodec::new(pipeline, policy);
        let units = storage.encode(&archive).unwrap();
        let pools = storage.sequence(&units, ErrorModel::noiseless(), CoverageModel::Fixed(1), 2);
        let clusters: Vec<_> = pools.iter().map(|p| p.clusters().to_vec()).collect();
        let (retrieved, _) = storage
            .decode(&clusters, &RetrieveOptions::default())
            .unwrap();
        assert_eq!(retrieved, archive);
    }
}
