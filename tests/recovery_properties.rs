//! Property tests for the unlabeled-pool recovery stage: the
//! anonymize → recover → decode path must round-trip byte-identically to
//! the labeled path at zero noise for *any* seed, stay invariant under
//! read-order shuffling and whole-pool reverse complementation, and keep
//! its scores inside [0, 1] under arbitrary noise.

use dna_skew::prelude::*;
use dna_skew::storage::StorageError;
use proptest::prelude::*;

/// The primer-wrapped tiny pipeline recovery is specified against:
/// primers give the orientation stage its anchor, exactly as in real
/// retrieval systems.
fn pipeline(recovery: RecoveryPipeline) -> Pipeline {
    Pipeline::builder()
        .params(
            CodecParams::tiny()
                .expect("tiny params")
                .with_primer_len(15),
        )
        .recovery(recovery)
        .build()
        .expect("tiny pipeline")
}

fn payload_from_seed(seed: u64, len: usize) -> Vec<u8> {
    // A cheap splitmix-style byte stream: payload content varies freely
    // with the seed, which is what makes the round-trip property bite
    // (constant payloads would make every strand near-identical).
    let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect()
}

fn recoveries() -> impl Strategy<Value = RecoveryPipeline> {
    (0usize..2).prop_map(|pick| {
        if pick == 0 {
            RecoveryPipeline::greedy(None)
        } else {
            RecoveryPipeline::anchored(None)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The acceptance property: at zero noise, decoding an anonymized
    /// pool (any anonymization seed, either clusterer) is byte-identical
    /// to decoding the labeled pool.
    #[test]
    fn zero_noise_anonymized_decode_is_byte_identical_to_labeled(
        seed in any::<u64>(),
        anon_seed in any::<u64>(),
        coverage in 1usize..6,
        recovery in recoveries(),
    ) {
        let pipeline = pipeline(recovery);
        let payload = payload_from_seed(seed, pipeline.payload_capacity());
        let unit = pipeline.encode_unit(&payload).expect("encode");
        let pool = pipeline.sequence(
            &unit,
            ErrorModel::noiseless(),
            CoverageModel::Fixed(coverage),
            seed,
        );
        let (labeled, _) = pipeline.decode_unit(pool.clusters()).expect("labeled decode");
        let (recovered, report) = pipeline
            .decode_pool(&pool.anonymize(anon_seed))
            .expect("recovered decode");
        prop_assert_eq!(&labeled, &recovered);
        prop_assert_eq!(&recovered, &payload);
        let recovery = report.recovery.expect("pool decode carries recovery stats");
        prop_assert_eq!(recovery.misassigned_reads, 0);
        prop_assert_eq!(recovery.purity(), Some(1.0));
    }

    /// Recovery is insensitive to the order reads arrive in: reshuffling
    /// an anonymous pool never changes the decoded bytes at zero noise.
    #[test]
    fn recovered_decode_is_invariant_under_read_order_shuffles(
        seed in any::<u64>(),
        shuffle_seed in any::<u64>(),
        recovery in recoveries(),
    ) {
        let pipeline = pipeline(recovery);
        let payload = payload_from_seed(seed ^ 0xFACE, pipeline.payload_capacity());
        let unit = pipeline.encode_unit(&payload).expect("encode");
        let pool = pipeline
            .sequence(&unit, ErrorModel::noiseless(), CoverageModel::Fixed(3), seed)
            .anonymize(seed);
        let (a, _) = pipeline.decode_pool(&pool).expect("decode");
        let (b, _) = pipeline
            .decode_pool(&pool.reshuffled(shuffle_seed))
            .expect("decode shuffled");
        prop_assert_eq!(a, b);
    }

    /// Orientation recovery is an involution: reverse-complementing
    /// every read of the pool changes nothing about the decoded bytes.
    #[test]
    fn orientation_recovery_is_an_involution_on_reverse_complemented_pools(
        seed in any::<u64>(),
        recovery in recoveries(),
    ) {
        let pipeline = pipeline(recovery);
        let payload = payload_from_seed(seed ^ 0xBEEF, pipeline.payload_capacity());
        let unit = pipeline.encode_unit(&payload).expect("encode");
        let anon = pipeline
            .sequence(&unit, ErrorModel::noiseless(), CoverageModel::Fixed(3), seed)
            .anonymize(seed ^ 1);
        let flipped = AnonymousPool::from_reads(
            anon.reads().iter().map(|r| r.reverse_complement()),
        );
        let (a, _) = pipeline.decode_pool(&anon).expect("decode");
        let (b, _) = pipeline.decode_pool(&flipped).expect("decode flipped");
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &payload);
    }

    /// Under arbitrary noise the recovery scores stay inside [0, 1] and
    /// the structural tallies stay consistent with each other.
    #[test]
    fn recovery_scores_are_bounded_and_consistent(
        seed in any::<u64>(),
        noise in 0.0..0.12f64,
        coverage in 1usize..8,
        recovery in recoveries(),
    ) {
        let pipeline = pipeline(recovery);
        let payload = payload_from_seed(seed ^ 0x5EED, pipeline.payload_capacity());
        let unit = pipeline.encode_unit(&payload).expect("encode");
        let anon = pipeline
            .sequence(
                &unit,
                ErrorModel::uniform(noise),
                CoverageModel::Fixed(coverage),
                seed,
            )
            .anonymize(seed ^ 2);
        match pipeline.decode_pool(&anon) {
            Ok((_, report)) => {
                let r = report.recovery.expect("recovery stats present");
                prop_assert_eq!(r.total_reads, anon.len());
                for s in [r.purity(), r.completeness()].into_iter().flatten() {
                    prop_assert!((0.0..=1.0).contains(&s), "score {s}");
                }
                prop_assert!(r.orphaned_reads <= r.total_reads);
                prop_assert!(r.misassigned_reads <= r.assigned_reads());
                prop_assert_eq!(
                    r.coverage_histogram.iter().sum::<usize>(),
                    r.assigned_reads()
                );
                prop_assert!(r.assigned_columns <= pipeline.params().cols());
            }
            // Degenerate corners (every molecule lost at coverage ~0, or
            // noise heavy enough to orphan everything) are typed errors,
            // not panics.
            Err(StorageError::EmptyPool) | Err(StorageError::AllReadsOrphaned { .. }) => {}
            Err(other) => return Err(TestCaseError::fail(format!("unexpected error {other}"))),
        }
    }
}
