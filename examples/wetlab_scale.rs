//! The wetlab validation, in silico (paper §6.2): two small images stored
//! in all three organizations, with PCR primers on every strand, read at
//! NGS error rates (0.3%), and decoded error-free.
//!
//! The paper's wetlab run validated exactly this toolchain — its software
//! path is identical for simulated and sequenced reads; only the read
//! source differs.
//!
//! ```text
//! cargo run --release --example wetlab_scale
//! ```

use dna_skew::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let img_codec = JpegLikeCodec::new(75)?;
    let images = [
        GrayImage::synthetic_photo(40, 32, 1),
        GrayImage::checkerboard(32, 32, 4),
    ];
    let archive = Archive::new(vec![
        FileEntry::new("photo", img_codec.encode(&images[0])?),
        FileEntry::new("chart", img_codec.encode(&images[1])?),
    ])?;

    // Small unit with 20-base primers on both ends of every molecule,
    // assembled field-by-field through the builder.
    let wetlab = Pipeline::builder()
        .field(dna_skew::gf::Field::gf256())
        .rows(12)
        .data_cols(120)
        .parity_cols(28)
        .index_bits(8)
        .primer_len(20);
    let params = wetlab.clone().build()?.params().clone();
    println!(
        "strands: {} bases each ({} payload + 2×20 primer); NGS error model at 0.3%",
        params.strand_bases(),
        params.strand_payload_bases()
    );

    for (layout, policy) in [
        (Layout::Baseline, RankingPolicy::Sequential),
        (
            Layout::Gini {
                excluded_rows: vec![],
            },
            RankingPolicy::Sequential,
        ),
        (Layout::DnaMapper, RankingPolicy::PositionPriority),
    ] {
        let name = layout.name();
        let pipeline = wetlab.clone().layout(layout).build()?;
        let storage = ArchiveCodec::new(pipeline, policy).with_encryption(3);
        let units = storage.encode(&archive)?;
        let pools = storage.sequence(
            &units,
            ErrorModel::wetlab_ngs(),
            CoverageModel::Gamma {
                mean: 10.0,
                shape: 6.0,
            },
            12345,
        );
        let clusters: Vec<Vec<Cluster>> = pools.iter().map(|p| p.clusters().to_vec()).collect();
        let (retrieved, reports) = storage.decode(&clusters, &RetrieveOptions::default())?;
        let exact = retrieved == archive;
        let corrected: usize = reports.iter().map(DecodeReport::total_corrected).sum();
        println!(
            "{name:>10}: decoded exactly = {exact} ({} units, {corrected} symbols corrected)",
            units.len()
        );
        for (img, file) in images.iter().zip(["photo", "chart"]) {
            let got = img_codec.decode_with_expected(
                &retrieved
                    .file(file)
                    .map(|f| f.bytes.clone())
                    .unwrap_or_default(),
                img.width(),
                img.height(),
            );
            let psnr = img.psnr(&got);
            println!(
                "            {file}: PSNR vs original {:.1} dB",
                psnr.min(99.0)
            );
        }
    }
    println!("\nAt wetlab NGS error rates every organization decodes perfectly —");
    println!("the differences only emerge at nanopore-class noise (see the benches).");
    Ok(())
}
