//! Graceful degradation: an encrypted image archive retrieved at falling
//! sequencing coverage, baseline mapping vs DnaMapper (a miniature of the
//! paper's Fig. 14).
//!
//! ```text
//! cargo run --release --example image_archive
//! ```

use dna_skew::media::rank::PositionRanker;
use dna_skew::prelude::*;

fn build_archive(
    codec: &JpegLikeCodec,
) -> Result<(Archive, Vec<GrayImage>), Box<dyn std::error::Error>> {
    // Images of different sizes, as in the paper's corpus (§6.1).
    let images = vec![
        GrayImage::synthetic_photo(64, 48, 11),
        GrayImage::synthetic_photo(48, 64, 22),
        GrayImage::plasma(56, 56, 33),
    ];
    let mut files = Vec::new();
    for (i, img) in images.iter().enumerate() {
        files.push(FileEntry::new(format!("img{i}"), codec.encode(img)?));
    }
    Ok((Archive::new(files)?, images))
}

fn mean_quality_loss(
    codec: &JpegLikeCodec,
    originals: &[GrayImage],
    stored: &Archive,
    retrieved: Option<&Archive>,
) -> f64 {
    let Some(retrieved) = retrieved else {
        return 48.0; // catastrophic: nothing decodable
    };
    let mut total = 0.0;
    for (i, original) in originals.iter().enumerate() {
        let name = format!("img{i}");
        let clean = codec.decode_with_expected(
            &stored.file(&name).expect("stored file").bytes,
            original.width(),
            original.height(),
        );
        let bytes = retrieved
            .file(&name)
            .map(|f| f.bytes.clone())
            .unwrap_or_default();
        let got = codec.decode_with_expected(&bytes, original.width(), original.height());
        let base = original.psnr(&clean).min(60.0);
        total += (base - original.psnr(&got).min(60.0)).max(0.0);
    }
    total / originals.len() as f64
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let img_codec = JpegLikeCodec::new(80)?;
    let (archive, originals) = build_archive(&img_codec)?;
    let params = CodecParams::laptop()?;
    let model = ErrorModel::uniform(0.09);
    let coverages: Vec<f64> = [14.0, 12.0, 10.0, 8.0, 6.0, 4.0].to_vec();
    let _ = PositionRanker; // the ranking DnaMapper uses implicitly

    println!(
        "archive: {} files, {} bytes (encrypted); channel: 9% uniform IDS noise",
        archive.files().len(),
        archive.content_bytes()
    );
    println!("\n{:>10} | {:>28} | {:>28}", "", "baseline", "dnamapper");
    println!(
        "{:>10} | {:>14} {:>13} | {:>14} {:>13}",
        "coverage", "loss (dB)", "undecodable", "loss (dB)", "undecodable"
    );

    let scenario = Scenario::new(model)
        .coverages(coverages.iter().copied())
        .trials(6)
        .seed(99);
    let mut results = Vec::new();
    for (layout, policy) in [
        (Layout::Baseline, RankingPolicy::Sequential),
        (Layout::DnaMapper, RankingPolicy::PositionPriority),
    ] {
        let pipeline = Pipeline::builder()
            .params(params.clone())
            .layout(layout)
            .build()?;
        let storage = ArchiveCodec::new(pipeline, policy).with_encryption(7);
        let points = quality_sweep(&storage, &archive, &scenario, |original, retrieved| {
            mean_quality_loss(&img_codec, &originals, original, retrieved)
        })?;
        results.push(points);
    }
    for (i, &cov) in coverages.iter().enumerate() {
        println!(
            "{cov:>10} | {:>14.2} {:>13} | {:>14.2} {:>13}",
            results[0][i].mean_loss_db,
            results[0][i].failed_decodes,
            results[1][i].mean_loss_db,
            results[1][i].failed_decodes,
        );
    }
    println!("\nDnaMapper loses quality gradually as coverage drops, while the");
    println!("baseline cliff-dives once mid-strand errors overwhelm its middle codewords.");
    Ok(())
}
