//! Quickstart: store a payload in simulated DNA under all three data
//! organizations, sequence it through a noisy channel, and read it back —
//! all through the fluent `PipelineBuilder` API.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dna_skew::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Laptop-scale geometry: GF(2^8), 255 molecules of 124 bases each,
    // 18.4% redundancy — the paper's §6.1.1 ratios at 1/256 size.
    let params = CodecParams::laptop()?;
    println!(
        "unit: {} molecules × {} bases, payload {} bytes, redundancy {:.1}%",
        params.cols(),
        params.strand_bases(),
        params.payload_bytes(),
        params.redundancy() * 100.0
    );

    let mut payload = Vec::new();
    while payload.len() < params.payload_bytes() {
        payload.extend_from_slice(b"Some parts of DNA molecules are more reliable than others. ");
    }
    payload.truncate(params.payload_bytes());

    // One Scenario describes the channel operating point for every run: a
    // 6% error rate, uniformly split between insertions, deletions and
    // substitutions, at mean coverage 12 with Gamma-distributed cluster
    // sizes — a mid-range nanopore-like operating point.
    let scenario = Scenario::new(ErrorModel::uniform(0.06))
        .single_coverage(12.0)
        .seed(2024);
    for layout in [
        Layout::Baseline,
        Layout::Gini {
            excluded_rows: vec![],
        },
        Layout::DnaMapper,
    ] {
        let name = layout.name();
        // Every pipeline is built through the validated builder; swap any
        // knob (consensus, primers, geometry overrides) without new
        // constructors.
        let pipeline = Pipeline::builder()
            .params(params.clone())
            .layout(layout)
            .build()?;
        let unit = pipeline.encode_unit(&payload)?;
        let pool = pipeline.sequence_with(&scenario.backend(), &unit, 0, scenario.seed);
        let (decoded, report) = pipeline.decode_unit(&pool.at_coverage(12.0))?;
        let exact = decoded == payload;
        println!(
            "{name:>10}: exact={exact}  corrected symbols={:<5} failed codewords={} lost molecules={}",
            report.total_corrected(),
            report.failed_codewords(),
            report.lost_columns,
        );
    }
    println!("\nAll three organizations store the same bytes at zero storage overhead;");
    println!("they differ only in how codewords and priorities map onto molecules.");
    Ok(())
}
