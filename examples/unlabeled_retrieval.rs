//! Unlabeled-pool retrieval: the realistic front half of a DNA storage
//! pipeline. The sequencer returns an anonymous soup — no labels, random
//! orientation, shuffled order — and retrieval must cluster the reads,
//! recover their orientation against the primers, and demultiplex them
//! by their decoded ordering indexes before the usual consensus + RS
//! decode can run.
//!
//! ```text
//! cargo run --release --example unlabeled_retrieval
//! ```

use dna_skew::align::AnchorOrienter;
use dna_skew::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Primer-wrapped strands: the primers are the orientation anchor
    // (and the random-access key) every real retrieval system leans on.
    let params = CodecParams::laptop()?.with_primer_len(16);
    let pipeline = Pipeline::builder()
        .params(params.clone())
        .layout(Layout::Gini {
            excluded_rows: vec![],
        })
        .recovery(RecoveryPipeline::anchored(None))
        .build()?;
    let payload: Vec<u8> = (0..pipeline.payload_capacity())
        .map(|i| (i as u32).wrapping_mul(167) as u8)
        .collect();
    let unit = pipeline.encode_unit(&payload)?;

    println!(
        "molecules: {}, strand length: {} bases",
        unit.len(),
        params.strand_bases()
    );
    for (name, channel) in [
        (
            "uniform 3%",
            ChannelModel::uniform(ErrorModel::uniform(0.03)),
        ),
        ("nanopore-decay 5%", ChannelModel::nanopore_decay(0.05)),
    ] {
        let scenario = Scenario::with_channel(channel)
            .single_coverage(12.0)
            .seed(7)
            .unlabeled();
        let pool = pipeline.sequence_with(&scenario.backend(), &unit, 0, scenario.seed);

        // The labeled (oracle) arm: the paper's perfect clustering.
        let (oracle, _) = pipeline.decode_unit(&pool.at_coverage(12.0))?;

        // The realistic arm: strip labels, randomize orientation,
        // shuffle — then recover everything.
        let anon =
            AnonymousPool::from_clusters(&pool.at_coverage(12.0), scenario.anonymize_seed(0));
        let (recovered, report) = pipeline.decode_pool(&anon)?;
        let recovery = report.recovery.expect("pool decodes carry recovery stats");
        println!("\n{name}: {} anonymous reads", anon.len());
        println!("  oracle   : exact={}", oracle == payload);
        println!(
            "  recovered: exact={} (clusters={}, purity={:.3}, orphaned={}, merges={}, flipped={})",
            recovered == payload,
            recovery.clusters_found,
            recovery.purity().unwrap_or(f64::NAN),
            recovery.orphaned_reads,
            recovery.duplicate_index_merges,
            recovery.flipped_reads,
        );
    }

    // The pieces compose individually, too: here the orientation-aware
    // consensus entry rebuilds one molecule from a hand-mixed cluster.
    let mut rng_reads = pipeline
        .sequence(
            &unit,
            ErrorModel::uniform(0.02),
            CoverageModel::Fixed(6),
            99,
        )
        .clusters()[0]
        .reads
        .clone();
    let flips: Vec<bool> = (0..rng_reads.len()).map(|i| i % 2 == 1).collect();
    for (read, &flip) in rng_reads.iter_mut().zip(&flips) {
        if flip {
            *read = read.reverse_complement();
        }
    }
    let consensus =
        BmaTwoWay::default().reconstruct_oriented(&rng_reads, &flips, params.strand_bases());
    println!(
        "\norientation-aware consensus rebuilt molecule 0: {} bases, matches synthesis: {}",
        consensus.len(),
        consensus == unit.strands()[0]
    );

    // And the orienter itself is reusable outside the pipeline:
    let orienter = AnchorOrienter::new(rng_reads[0].slice(0, 16));
    let (orientation, _) = orienter.orient(&rng_reads[0].reverse_complement());
    println!(
        "orienter sees a flipped read as flipped: {}",
        orientation.is_flipped()
    );
    Ok(())
}
