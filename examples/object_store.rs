//! The bounded-memory object store at scale: pack gigabytes of objects
//! into a capsule pool from a streaming source, then fetch one object
//! back byte-identically — while peak RSS stays under 256 MiB, because
//! both directions stream one ~100 KB capsule at a time.
//!
//! ```text
//! cargo run --release --example object_store                    # 1 GiB total
//! DNA_REPRO_SCALE=smoke cargo run --release --example object_store   # 64 MiB
//! DNA_REPRO_SCALE=paper cargo run --release --example object_store   # 4 GiB
//! ```
//!
//! The fetch decodes only the target object's capsules (primer-addressed
//! random access); the rest of the pool is never read.

use dna_bench::Scale;
use dna_skew::object::{ObjectStore, StoreConfig};
use std::io::{Read, Write};
use std::time::Instant;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// A deterministic pseudorandom byte stream that fingerprints itself as
/// it is read — the "file" being packed, without ever materializing it.
struct ByteStream {
    state: u64,
    remaining: u64,
    hash: u64,
}

impl ByteStream {
    fn new(seed: u64, len: u64) -> ByteStream {
        ByteStream {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
            remaining: len,
            hash: FNV_OFFSET,
        }
    }
}

impl Read for ByteStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = (buf.len() as u64).min(self.remaining) as usize;
        for b in &mut buf[..n] {
            self.state = self
                .state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *b = (self.state >> 33) as u8;
            self.hash = (self.hash ^ u64::from(*b)).wrapping_mul(FNV_PRIME);
        }
        self.remaining -= n as u64;
        Ok(n)
    }
}

/// A sink that fingerprints what flows through it without storing it.
struct HashWriter {
    hash: u64,
    bytes: u64,
}

impl Write for HashWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        for &b in buf {
            self.hash = (self.hash ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        self.bytes += buf.len() as u64;
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Peak resident set size in MiB, from `/proc/self/status` (`VmHWM`).
fn peak_rss_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line
        .trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb / 1024.0)
}

fn gib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0 * 1024.0)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = Scale::from_env();
    // Four objects; total payload 64 MiB (smoke) / 1 GiB (default) /
    // 4 GiB (paper).
    let object_mib = scale.pick(16, 256, 1024) as u64;
    let object_bytes = object_mib * 1024 * 1024;
    let n_objects = 4u64;

    let dir = std::path::Path::new("target").join("example-object-store");
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = ObjectStore::create(&dir, StoreConfig::laptop()?)?;
    println!(
        "packing {n_objects} objects × {object_mib} MiB ({:.2} GiB total) into {} \
         ({} B payload per capsule)",
        gib(n_objects * object_bytes),
        dir.display(),
        store.capsule_capacity(),
    );

    let mut expected = Vec::new();
    let pack_start = Instant::now();
    for i in 0..n_objects {
        let mut source = ByteStream::new(0xC0DE + i, object_bytes);
        let id = store.put(&format!("object-{i}.bin"), &mut source)?;
        expected.push((id, source.hash));
        println!(
            "  put object-{i}.bin -> id {id} ({} capsules so far, peak RSS {:.0} MiB)",
            store.manifest().capsules().len(),
            peak_rss_mib().unwrap_or(f64::NAN),
        );
    }
    let pack_secs = pack_start.elapsed().as_secs_f64();
    let total = n_objects * object_bytes;
    println!(
        "packed {:.2} GiB in {pack_secs:.1} s ({:.3} GB/s), pool file {:.2} GiB",
        gib(total),
        total as f64 / 1e9 / pack_secs,
        gib(std::fs::metadata(dir.join(dna_skew::object::POOL_FILE))?.len()),
    );

    // Random access: fetch ONE object; only its capsules are read.
    let (target_id, want_hash) = expected[1];
    let mut sink = HashWriter {
        hash: FNV_OFFSET,
        bytes: 0,
    };
    let fetch_start = Instant::now();
    let report = store.fetch(target_id, &mut sink)?;
    let fetch_secs = fetch_start.elapsed().as_secs_f64();
    assert_eq!(sink.bytes, object_bytes, "fetched byte count");
    assert_eq!(sink.hash, want_hash, "fetched bytes are byte-identical");
    println!(
        "fetched object {target_id}: {:.2} GiB in {fetch_secs:.1} s ({:.3} GB/s) from \
         {} capsules / {} units / {} reads ({} dropped by primer prefilter)",
        gib(sink.bytes),
        sink.bytes as f64 / 1e9 / fetch_secs,
        report.capsules,
        report.units,
        report.reads,
        report.prefilter_dropped,
    );

    match peak_rss_mib() {
        Some(peak) => {
            println!("peak RSS {peak:.0} MiB (bound: 256 MiB)");
            assert!(
                peak < 256.0,
                "streaming bound violated: peak RSS {peak:.0} MiB"
            );
        }
        None => println!("peak RSS unavailable (no /proc); skipping the 256 MiB assertion"),
    }

    let _ = std::fs::remove_dir_all(&dir);
    println!("done: fetch touched the target object's capsules only");
    Ok(())
}
