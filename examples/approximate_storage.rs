//! Approximate storage of an **encrypted** image: deliberately sequence at
//! insufficient coverage and accept a lower-quality image — the paper's §5
//! use case that no content-inspecting scheme can serve (the stored bits
//! are ciphertext; only position-based ranking works).
//!
//! Decoded images are written as PGM files under `target/approx/`.
//!
//! ```text
//! cargo run --release --example approximate_storage
//! ```

use dna_skew::prelude::*;
use std::fs;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let img_codec = JpegLikeCodec::new(85)?;
    let image = GrayImage::synthetic_photo(96, 72, 5);
    let file = img_codec.encode(&image)?;
    println!(
        "image: {}×{}, {} bytes encoded (then ChaCha20-encrypted)",
        image.width(),
        image.height(),
        file.len()
    );
    let archive = Archive::new(vec![FileEntry::new("photo", file)])?;

    let pipeline = Pipeline::builder()
        .params(CodecParams::laptop()?)
        .layout(Layout::DnaMapper)
        .build()?;
    let storage =
        ArchiveCodec::new(pipeline, RankingPolicy::PositionPriority).with_encryption(0xA5A5);
    let units = storage.encode(&archive)?;

    let out_dir = std::path::Path::new("target/approx");
    fs::create_dir_all(out_dir)?;
    fs::write(out_dir.join("original.pgm"), image.to_pgm())?;

    // One pool, drawn down progressively: paying for less sequencing
    // retrieves the same object at gradually lower fidelity.
    let model = ErrorModel::uniform(0.12);
    let pools = storage.sequence(
        &units,
        model,
        CoverageModel::Gamma {
            mean: 16.0,
            shape: 6.0,
        },
        77,
    );
    println!("\n{:>10} {:>12} {:>10}", "coverage", "PSNR (dB)", "file");
    for cov in [16.0, 13.0, 11.0, 9.0, 7.0] {
        let clusters: Vec<Vec<Cluster>> = pools.iter().map(|p| p.at_coverage(cov)).collect();
        let name = format!("cov{:02}.pgm", cov as u32);
        match storage.decode(&clusters, &RetrieveOptions::default()) {
            Ok((retrieved, _)) => {
                let bytes = retrieved
                    .file("photo")
                    .map(|f| f.bytes.clone())
                    .unwrap_or_default();
                let decoded = img_codec.decode_with_expected(&bytes, image.width(), image.height());
                fs::write(out_dir.join(&name), decoded.to_pgm())?;
                println!(
                    "{cov:>10} {:>12.2} {name:>10}",
                    image.psnr(&decoded).min(60.0)
                );
            }
            Err(_) => println!("{cov:>10} {:>12} {:>10}", "unreadable", "-"),
        }
    }
    println!("\nPGs written to target/approx/ — the image degrades gracefully because");
    println!("its early (structurally critical) bits sit at molecule ends, which the");
    println!("consensus step reconstructs most reliably.");
    Ok(())
}
