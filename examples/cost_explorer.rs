//! Reading/writing cost exploration: how much sequencing coverage (read
//! cost) and redundancy (write cost) Gini saves over the baseline —
//! miniatures of the paper's Figs. 12 and 13.
//!
//! ```text
//! cargo run --release --example cost_explorer
//! ```

use dna_skew::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A reduced geometry keeps this example snappy; the bench targets
    // (crates/bench) run the full laptop-scale sweeps.
    let params = dna_skew::storage::CodecParams::new(
        dna_skew::gf::Field::gf256(),
        16,
        100,
        23, // 18.7% redundancy
        8,
    )?;
    let payload: Vec<u8> = (0..params.payload_bytes()).map(|i| (i % 253) as u8).collect();
    let opts = MinCoverageOptions {
        coverages: (2..=30).map(f64::from).collect(),
        trials: 5,
        seed: 11,
        gamma: true,
        forced_erasures: vec![],
    };

    println!("== Minimum coverage for error-free decoding (lower is cheaper) ==");
    println!("{:>10} {:>10} {:>8} {:>9}", "error rate", "baseline", "gini", "saving");
    for p in [0.03, 0.06, 0.09] {
        let model = ErrorModel::uniform(p);
        let base = min_coverage(
            &Pipeline::new(params.clone(), Layout::Baseline)?,
            &payload,
            model,
            &opts,
        )?;
        let gini = min_coverage(
            &Pipeline::new(params.clone(), Layout::Gini { excluded_rows: vec![] })?,
            &payload,
            model,
            &opts,
        )?;
        match (base, gini) {
            (Some(b), Some(g)) => println!(
                "{:>9.0}% {b:>10} {g:>8} {:>8.0}%",
                p * 100.0,
                (1.0 - g / b) * 100.0
            ),
            _ => println!("{:>9.0}% {:>10} {:>8}", p * 100.0, "n/a", "n/a"),
        }
    }

    println!("\n== Gini: trading redundancy for coverage at a fixed 9% error rate ==");
    println!("(erasing parity molecules lowers the effective redundancy, Fig. 13)");
    println!("{:>12} {:>12} {:>14}", "redundancy", "min cover", "parity erased");
    let gini = Pipeline::new(params.clone(), Layout::Gini { excluded_rows: vec![] })?;
    let model = ErrorModel::uniform(0.09);
    for erased in [0usize, 4, 8, 12] {
        let forced: Vec<usize> =
            (params.data_cols()..params.data_cols() + erased).collect();
        let opts = MinCoverageOptions {
            forced_erasures: forced,
            ..opts.clone()
        };
        let effective = (params.parity_cols() - erased) as f64 / params.cols() as f64;
        match min_coverage(&gini, &payload, model, &opts)? {
            Some(cov) => println!("{:>11.1}% {cov:>12} {erased:>14}", effective * 100.0),
            None => println!("{:>11.1}% {:>12} {erased:>14}", effective * 100.0, "n/a"),
        }
    }
    println!("\nGini spends redundancy where the baseline wastes it: every codeword");
    println!("sees the same error mass, so none needs worst-case provisioning.");
    Ok(())
}
