//! Reading/writing cost exploration: how much sequencing coverage (read
//! cost) and redundancy (write cost) Gini saves over the baseline —
//! miniatures of the paper's Figs. 12 and 13.
//!
//! ```text
//! cargo run --release --example cost_explorer
//! ```

use dna_skew::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A reduced geometry keeps this example snappy; the bench targets
    // (crates/bench) run the full laptop-scale sweeps. The builder
    // assembles it field-by-field, validated at build().
    let builder = || {
        Pipeline::builder()
            .field(dna_skew::gf::Field::gf256())
            .rows(16)
            .data_cols(100)
            .parity_cols(23) // 18.7% redundancy
            .index_bits(8)
    };
    let params = builder().build()?.params().clone();
    let payload: Vec<u8> = (0..params.payload_bytes())
        .map(|i| (i % 253) as u8)
        .collect();
    let scenario = |model| {
        Scenario::new(model)
            .coverage_range(2, 30)
            .trials(5)
            .seed(11)
    };

    println!("== Minimum coverage for error-free decoding (lower is cheaper) ==");
    println!(
        "{:>10} {:>10} {:>8} {:>9}",
        "error rate", "baseline", "gini", "saving"
    );
    for p in [0.03, 0.06, 0.09] {
        let s = scenario(ErrorModel::uniform(p));
        let base = min_coverage(&builder().layout(Layout::Baseline).build()?, &payload, &s)?;
        let gini = min_coverage(
            &builder()
                .layout(Layout::Gini {
                    excluded_rows: vec![],
                })
                .build()?,
            &payload,
            &s,
        )?;
        match (base, gini) {
            (Some(b), Some(g)) => println!(
                "{:>9.0}% {b:>10} {g:>8} {:>8.0}%",
                p * 100.0,
                (1.0 - g / b) * 100.0
            ),
            _ => println!("{:>9.0}% {:>10} {:>8}", p * 100.0, "n/a", "n/a"),
        }
    }

    println!("\n== Gini: trading redundancy for coverage at a fixed 9% error rate ==");
    println!("(erasing parity molecules lowers the effective redundancy, Fig. 13)");
    println!(
        "{:>12} {:>12} {:>14}",
        "redundancy", "min cover", "parity erased"
    );
    let gini = builder()
        .layout(Layout::Gini {
            excluded_rows: vec![],
        })
        .build()?;
    let s = scenario(ErrorModel::uniform(0.09));
    for erased in [0usize, 4, 8, 12] {
        let retrieve = RetrieveOptions {
            forced_erasures: (params.data_cols()..params.data_cols() + erased).collect(),
            ..RetrieveOptions::default()
        };
        let effective = (params.parity_cols() - erased) as f64 / params.cols() as f64;
        match min_coverage_with(&gini, &payload, &s, &retrieve)? {
            Some(cov) => println!("{:>11.1}% {cov:>12} {erased:>14}", effective * 100.0),
            None => println!("{:>11.1}% {:>12} {erased:>14}", effective * 100.0, "n/a"),
        }
    }
    println!("\nGini spends redundancy where the baseline wastes it: every codeword");
    println!("sees the same error mass, so none needs worst-case provisioning.");
    Ok(())
}
