//! Channel models: the same archive under progressively nastier channels —
//! flat IDS noise, nanopore-style positional decay, PCR amplification
//! skew, whole-strand dropout, and burst indels — comparing how the
//! baseline and Gini layouts degrade.
//!
//! ```text
//! cargo run --release --example channel_models
//! ```

use dna_skew::prelude::*;
use dna_skew::storage::Scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = CodecParams::laptop()?;
    let payload: Vec<u8> = (0..params.payload_bytes())
        .map(|i| (i.wrapping_mul(97) % 256) as u8)
        .collect();

    // Each preset is one composable ChannelModel; all other knobs (the
    // coverage draw, the trial seed) stay identical so only the channel
    // changes between rows. Custom mixes compose the same way, e.g.:
    //   ChannelModel::uniform(ErrorModel::ngs(0.01))
    //       .with_profile(PositionProfile::linear(0.8, 1.4)?)?
    //       .with_dropout(0.02)?
    let channels: [(&str, ChannelModel); 5] = [
        (
            "uniform 6%",
            ChannelModel::uniform(ErrorModel::uniform(0.06)),
        ),
        ("nanopore-decay 6%", ChannelModel::nanopore_decay(0.06)),
        ("pcr-skewed 6%", ChannelModel::pcr_skewed(0.06)),
        ("dropout 6% + 4%", ChannelModel::dropout_prone(0.06, 0.04)),
        ("bursty 6%", ChannelModel::bursty(0.06)),
    ];

    println!("{:<20} {:>14} {:>14}", "channel", "baseline", "gini");
    for (name, channel) in channels {
        let scenario = Scenario::with_channel(channel)
            .single_coverage(14.0)
            .seed(2026);
        scenario.validate()?;
        let mut cells = Vec::new();
        for layout in [
            Layout::Baseline,
            Layout::Gini {
                excluded_rows: vec![],
            },
        ] {
            let pipeline = Pipeline::builder()
                .params(params.clone())
                .layout(layout)
                .build()?;
            let unit = pipeline.encode_unit(&payload)?;
            let pool = pipeline.sequence_with(&scenario.backend(), &unit, 0, scenario.seed);
            let (decoded, report) = pipeline.decode_unit(&pool.at_coverage(14.0))?;
            let exact = decoded == payload;
            cells.push(format!(
                "{} ({:>3}✚ {:>2}✖)",
                if exact { "ok " } else { "LOSS" },
                report.total_corrected(),
                report.failed_codewords(),
            ));
        }
        println!("{name:<20} {:>14} {:>14}", cells[0], cells[1]);
    }
    println!("\n(✚ corrected symbols, ✖ failed codewords; coverage 14, one realization each)");
    println!("Position- and strand-level skew is exactly the regime Gini was designed for.");
    Ok(())
}
